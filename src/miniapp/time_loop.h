// vecfd::miniapp — transient semi-implicit time loop.
//
// One step of the incompressible pressure-projection scheme, every solve
// strip-mined at VECTOR_SIZE and feeding the same per-phase counters as the
// assembly study (phases in brackets):
//
//   [1–8]  semi-implicit assembly of K = (ρ/Δt)M + C(uⁿ) + V and the
//          momentum residual rhs (the existing mini-app phases)
//   [9]    blocked multi-RHS momentum BiCGStab: the kDim component systems
//          share ONE operator K (block-diagonal over components, DESIGN.md
//          §2), so the backward-Euler RHS block  b_d = rhs_d + (K − Mdt)·uⁿ_d
//          is formed with multi-RHS ELL SpMV (one value/index slab load
//          feeding kDim gather streams), the scenario's Dirichlet rows are
//          imposed per component, and K u*_d = b_d is solved for all
//          components at once by Jacobi-preconditioned vbicgstab_multi,
//          warm-started from uⁿ (DESIGN.md §5).  Per-column results are
//          bit-for-bit those of the sequential per-component path, which
//          stays available via TimeLoopConfig::blocked_momentum = false
//          (the 9a–9c reference bench/multirhs_speedup compares against)
//   [10]   pressure-Poisson CG:  L φ = −(ρ/Δt)·D u*  on the SPD stiffness
//          operator of fem/projection.h (vcg, pinned per the scenario)
//   [11]   BLAS-1 velocity correction  uⁿ⁺¹_d = u*_d − (Δt/ρ)·M_L⁻¹(Ĝφ)_d
//          and the pressure increment pⁿ⁺¹ = pⁿ + φ
//
// Host-side (uncounted, per the operator-setup policy of solver/vkernels.h):
// the constant operators L / Mdt / M_L (built once per loop), the per-step
// D/Ĝ FEM evaluations feeding phases 10/11, Dirichlet row edits and the
// divergence diagnostics.
//
// Verification hooks: every StepReport carries the Krylov convergence
// reports and the lumped-L2 norm of the weak divergence before and after
// projection, and scenarios with an analytic solution (Taylor–Green) make
// the whole loop checkable against closed form — see test_time_loop.
// Design notes: DESIGN.md §4.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fem/mesh.h"
#include "fem/state.h"
#include "miniapp/config.h"
#include "miniapp/driver.h"
#include "miniapp/scenarios.h"
#include "sim/fault_injection.h"
#include "sim/vpu.h"
#include "solver/csr.h"
#include "solver/krylov.h"
#include "solver/sharding.h"

namespace vecfd::miniapp {

struct TimeLoopCheckpoint;  // miniapp/checkpoint.h

struct TimeLoopConfig {
  int steps = 5;
  int vector_size = 240;
  OptLevel opt = OptLevel::kVec1;
  solver::SolveOptions momentum{.max_iterations = 500,
                                .rel_tolerance = 1e-10, .precond = {}};
  solver::SolveOptions pressure{.max_iterations = 1000,
                                .rel_tolerance = 1e-10, .precond = {}};
  /// Phase 9 path: true (default) runs the fused multi-RHS block solve
  /// (vbicgstab_multi, shared operator slabs); false runs the sequential
  /// per-component solves 9a–9c.  Both produce bit-identical fields and
  /// per-component reports — the flag exists for the co-design comparison
  /// (bench/multirhs_speedup) and equivalence tests.
  bool blocked_momentum = true;
  /// Operator storage format of every instrumented SpMV (the phase-9 RHS
  /// formation and the momentum/pressure Krylov solves; DESIGN.md §6).
  /// Residual histories and fields are bit-identical across formats — the
  /// knob trades gather/pad counters and cycles, not numerics.
  solver::SpmvFormat format = solver::SpmvFormat::kEll;
  /// Reverse-Cuthill–McKee renumbering of the SOLVE space: the momentum
  /// and pressure operators are permuted to P·A·Pᵀ (fem::rcm_ordering)
  /// and the RHS/unknown vectors are marshalled into solve order and back
  /// around each Krylov solve (host-side, per the operator-setup policy of
  /// solver/vkernels.h — the win is measured inside the solve's gathers).
  /// The solved SYSTEM is identical; the permuted dot products reassociate,
  /// so residual histories differ from the unpermuted run in the last ulps
  /// while the returned fields agree to solver tolerance (the round-trip
  /// test of test_format_equivalence).
  bool rcm_renumber = false;
  /// Preconditioner rung of the phase-10 pressure solve (the ladder of
  /// solver/preconditioner.h; `vecfd-run --precond`).  kJacobi reproduces
  /// the historic instruction stream bit for bit; kCheby and kDeflate
  /// trade more instrumented work per iteration for fewer iterations.
  /// For kDeflate the loop builds the structured coarse space itself
  /// (fem::structured_aggregates at a fixed block factor of 2, composed
  /// with the RCM permutation when rcm_renumber is set).
  solver::PrecondKind precond = solver::PrecondKind::kJacobi;
  /// Domain-decomposition shard count of the phase-10 pressure solve
  /// (DESIGN.md §9).  shards > 1 partitions the solve-ordered node range
  /// into strip-aligned subdomains (fem::partition_mesh), runs the CG on
  /// one instrumented Vpu per shard (solver::ShardedCg) and prices ghost
  /// refreshes through the halo counters.  Fields and residual histories
  /// are BIT-identical for every shard count; the knob trades the BSP
  /// makespan and halo-volume counters, not numerics.  The sharded path
  /// serves the kJacobi rung on vector machines; every other combination
  /// (scalar machines, cheby/deflate rungs, a zero operator diagonal)
  /// falls back to the identical-by-construction single-Vpu path.
  int shards = 1;
  /// Epoch length of the checkpoint/restart protocol (miniapp/checkpoint.h,
  /// DESIGN.md §10).  N > 0 makes every N-th step boundary a MEASURED
  /// EVENT: the accumulated state is captured (and handed to the sink, if
  /// one is set) and every memory hierarchy is flushed — caches cold,
  /// canonical first-touch map forgotten — so each epoch's counter stream
  /// is a pure function of the bit-identical fields and a restarted
  /// process reproduces it exactly.  Fields and residual histories are
  /// bit-identical across ALL cadences (the cache model is tag-only); the
  /// counter stream is bit-identical per cadence.  0 (default) leaves the
  /// historic stream untouched.
  int checkpoint_every = 0;
  /// Deterministic fault injected into THIS run (sim/fault_injection.h):
  /// breakdown fails the phase-10 solve through its instrumented failure
  /// exit, nan-rhs poisons the weak-divergence RHS host-side, zero-diag
  /// zeroes the first momentum diagonal after the Dirichlet pass.  The
  /// default spec is disarmed and injects nothing.
  sim::FaultSpec fault{};
};

/// Per-step convergence and incompressibility diagnostics.
struct StepReport {
  double time = 0.0;  ///< t^{n+1} of this step
  /// Per-component momentum reports (phase 9) — under the blocked solve
  /// these are the per-column reports of vbicgstab_multi.
  std::array<solver::SolveReport, fem::kDim> momentum;
  solver::SolveReport pressure;                         ///< phase 10
  /// Lumped-L2 norm ‖div u‖ = sqrt(Σ_a D_a²/M_L[a]) of the weak divergence
  /// before (u*) and after (uⁿ⁺¹) the projection.
  double div_before = 0.0;
  double div_after = 0.0;
  double cycles = 0.0;  ///< cycles charged during this step
};

struct TimeLoopResult {
  std::vector<StepReport> steps;
  bool all_converged = true;  ///< every Krylov solve of every step converged

  sim::Counters total;               ///< whole-run counters (all Vpus)
  std::vector<sim::Counters> phase;  ///< 0..kNumInstrumentedPhases
  double cycles = 0.0;
  /// Critical-path cycles of the phase-10 pressure solves: the BSP
  /// makespan of ShardedCg when the sharded path ran, otherwise the
  /// phase-10 serial cycle total.  THE strong-scaling metric of
  /// bench/shard_scaling; cycles/total keep counting ALL work (shard
  /// counters are aggregated in), so conservation still holds.
  double pressure_makespan_cycles = 0.0;
};

/// Runs N semi-implicit pressure-projection steps of a Scenario on a
/// simulated machine.  Owns its State (initialized from the scenario);
/// the mesh must outlive the loop.  Distinct TimeLoops over one shared
/// Mesh are safe to run concurrently (each owns its State and Vpu) — the
/// campaign fan-out of core/campaign.h builds on this.
class TimeLoop {
 public:
  TimeLoop(const fem::Mesh& mesh, const Scenario& scenario,
           TimeLoopConfig cfg);

  const TimeLoopConfig& config() const { return cfg_; }
  const Scenario& scenario() const { return scen_; }
  const fem::State& state() const { return state_; }
  double time() const { return time_; }

  /// Advance cfg.steps steps on @p vpu.  Resets the machine first; calling
  /// run() again continues from the current fields and time.  After
  /// restore(), the next run() executes only the remaining steps and
  /// returns the SAME TimeLoopResult (steps, counters, histories, bit for
  /// bit) as the uninterrupted run with the same checkpoint cadence.
  TimeLoopResult run(sim::Vpu& vpu);

  /// Arm checkpoint capture: with cfg.checkpoint_every = N > 0, @p sink
  /// receives the accumulated state at every N-th step boundary and once
  /// more at run completion (so a finished point replays identically under
  /// --resume).  @p config_hash is stamped into every checkpoint and
  /// verified by restore() — compute it with timeloop_config_hash().
  void set_checkpoint_sink(
      std::uint64_t config_hash,
      std::function<void(const TimeLoopCheckpoint&)> sink);

  /// Rewind this (freshly constructed) loop to a checkpoint: fields, time,
  /// step cursor and the carried reports/counters.  The next run() resumes
  /// from checkpoint.next_step.  @throws std::runtime_error on a config
  /// hash mismatch or a checkpoint that does not fit this loop's shape.
  void restore(const TimeLoopCheckpoint& checkpoint,
               std::uint64_t expected_hash);

 private:
  void apply_velocity_bc(std::vector<double>& vel, double t) const;
  double divergence_norm(const std::vector<double>& div) const;

  const fem::Mesh* mesh_;
  Scenario scen_;
  TimeLoopConfig cfg_;
  fem::State state_;
  MiniApp app_;
  double time_ = 0.0;

  // constant host-side operators (see header comment)
  solver::CsrMatrix poisson_;         ///< pinned SPD Laplacian (phase 10);
                                      ///< RCM-permuted when rcm_renumber
  solver::CsrMatrix dtmass_;          ///< dtfac-weighted consistent mass
  std::vector<double> lumped_inv_;    ///< 1 / M_L
  std::vector<int> pressure_pins_;

  // RCM solve-space machinery (empty unless cfg.rcm_renumber).  The
  // momentum PATTERN is constant across steps, so its permuted twin and
  // the nnz value map are built once; per step only the values are
  // refreshed in place (no allocation churn of Vpu-touched buffers — the
  // determinism requirement of mem/memory_hierarchy.h).
  std::vector<int> rcm_perm_;               ///< solve index → node
  solver::CsrMatrix mom_perm_;              ///< P·K·Pᵀ pattern + values
  std::vector<std::ptrdiff_t> mom_value_map_;  ///< permuted nnz → K nnz

  /// Builds the sharded pressure context for @p vpu's machine, or null
  /// when cfg.shards == 1 or the combination falls back to the legacy
  /// path (scalar machine, non-Jacobi rung, zero operator diagonal).
  std::unique_ptr<solver::ShardedCg> make_sharded(const sim::Vpu& vpu,
                                                  int slice) const;

  // Checkpoint/restart state (miniapp/checkpoint.h).  The carried_* members
  // hold the pre-restore accumulation (steps, counters, makespan) and are
  // consumed by the next run(); they stay empty/zero unless restore() was
  // called, so the default path aggregates exactly as before.
  std::uint64_t ckpt_hash_ = 0;
  std::function<void(const TimeLoopCheckpoint&)> ckpt_sink_;
  int start_step_ = 0;
  std::vector<StepReport> carried_steps_;
  sim::Counters carried_total_;
  std::vector<sim::Counters> carried_phase_;
  double carried_makespan_ = 0.0;
  bool carried_converged_ = true;
};

}  // namespace vecfd::miniapp
