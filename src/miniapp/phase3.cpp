// Phase 3: Jacobian at the integration points — J, det/inverse, Cartesian
// derivatives (gpcar) and the quadrature measure (gpvol).  FP-heavy with
// divisions; three subkernels the vectorizer analyzes independently.
#include "miniapp/phases.h"

namespace vecfd::miniapp {

using fem::kDim;
using fem::kGauss;
using fem::kNodes;
using sim::Vec;
using sim::Vpu;

namespace {

// jac(i,j) = Σ_a elcod(i,a)·∂N_a/∂ξ_j  → jtmp
void s1_jac_vector(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g,
                   int off, int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  vpu.set_vl(n);
  for (int i = 0; i < kDim; ++i) {
    Vec ec[kNodes];
    for (int a = 0; a < kNodes; ++a) ec[a] = vpu.vload(ch.elcod(i, a) + off);
    for (int j = 0; j < kDim; ++j) {
      Vec acc = vpu.vmul_s(ec[0], sh.dn(g, j, 0));
      for (int a = 1; a < kNodes; ++a) {
        acc = vpu.vfma_s(ec[a], sh.dn(g, j, a), acc);
      }
      vpu.vstore(ch.jtmp(i, j) + off, acc);
    }
  }
}

void s1_jac_scalar(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g,
                   int off, int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  for (int iv = off; iv < off + n; ++iv) {
    for (int i = 0; i < kDim; ++i) {
      double ec[kNodes];
      for (int a = 0; a < kNodes; ++a) ec[a] = vpu.sload(ch.elcod(i, a) + iv);
      for (int j = 0; j < kDim; ++j) {
        double acc = vpu.smul(ec[0], sh.dn(g, j, 0));
        for (int a = 1; a < kNodes; ++a) {
          acc = vpu.sfma(ec[a], sh.dn(g, j, a), acc);
        }
        vpu.sstore(ch.jtmp(i, j) + iv, acc);
      }
    }
  }
}

// det, J⁻¹ (→ itmp, laid out [j][d] = ∂ξ_j/∂x_d) and gpvol
void s2_inv_vector(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g,
                   int off, int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  vpu.set_vl(n);
  Vec j[kDim][kDim];
  for (int i = 0; i < kDim; ++i) {
    for (int jj = 0; jj < kDim; ++jj) {
      j[i][jj] = vpu.vload(ch.jtmp(i, jj) + off);
    }
  }
  auto cof = [&](int r1, int c1, int r2, int c2, int r3, int c3, int r4,
                 int c4) {
    // j[r1][c1]·j[r2][c2] − j[r3][c3]·j[r4][c4]
    const Vec t = vpu.vmul(j[r1][c1], j[r2][c2]);
    return vpu.vfnma(j[r3][c3], j[r4][c4], t);
  };
  const Vec c00 = cof(1, 1, 2, 2, 1, 2, 2, 1);
  const Vec c01 = cof(1, 2, 2, 0, 1, 0, 2, 2);
  const Vec c02 = cof(1, 0, 2, 1, 1, 1, 2, 0);
  const Vec c10 = cof(0, 2, 2, 1, 0, 1, 2, 2);
  const Vec c11 = cof(0, 0, 2, 2, 0, 2, 2, 0);
  const Vec c12 = cof(0, 1, 2, 0, 0, 0, 2, 1);
  const Vec c20 = cof(0, 1, 1, 2, 0, 2, 1, 1);
  const Vec c21 = cof(0, 2, 1, 0, 0, 0, 1, 2);
  const Vec c22 = cof(0, 0, 1, 1, 0, 1, 1, 0);
  Vec det = vpu.vmul(j[0][2], c02);
  det = vpu.vfma(j[0][1], c01, det);
  det = vpu.vfma(j[0][0], c00, det);
  const Vec one = vpu.vsplat(1.0);
  const Vec invdet = vpu.vdiv(one, det);
  // itmp[j][d] = ∂ξ_j/∂x_d = cof(d,j)ᵀ·invdet
  vpu.vstore(ch.itmp(0, 0) + off, vpu.vmul(c00, invdet));
  vpu.vstore(ch.itmp(0, 1) + off, vpu.vmul(c10, invdet));
  vpu.vstore(ch.itmp(0, 2) + off, vpu.vmul(c20, invdet));
  vpu.vstore(ch.itmp(1, 0) + off, vpu.vmul(c01, invdet));
  vpu.vstore(ch.itmp(1, 1) + off, vpu.vmul(c11, invdet));
  vpu.vstore(ch.itmp(1, 2) + off, vpu.vmul(c21, invdet));
  vpu.vstore(ch.itmp(2, 0) + off, vpu.vmul(c02, invdet));
  vpu.vstore(ch.itmp(2, 1) + off, vpu.vmul(c12, invdet));
  vpu.vstore(ch.itmp(2, 2) + off, vpu.vmul(c22, invdet));
  vpu.vstore(ch.gpvol(g) + off, vpu.vmul_s(det, sh.weight(g)));
}

void s2_inv_scalar(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g,
                   int off, int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  for (int iv = off; iv < off + n; ++iv) {
    double j[kDim][kDim];
    for (int i = 0; i < kDim; ++i) {
      for (int jj = 0; jj < kDim; ++jj) {
        j[i][jj] = vpu.sload(ch.jtmp(i, jj) + iv);
      }
    }
    auto cof = [&](int r1, int c1, int r2, int c2, int r3, int c3, int r4,
                   int c4) {
      const double t = vpu.smul(j[r1][c1], j[r2][c2]);
      return vpu.sfnma(j[r3][c3], j[r4][c4], t);
    };
    const double c00 = cof(1, 1, 2, 2, 1, 2, 2, 1);
    const double c01 = cof(1, 2, 2, 0, 1, 0, 2, 2);
    const double c02 = cof(1, 0, 2, 1, 1, 1, 2, 0);
    const double c10 = cof(0, 2, 2, 1, 0, 1, 2, 2);
    const double c11 = cof(0, 0, 2, 2, 0, 2, 2, 0);
    const double c12 = cof(0, 1, 2, 0, 0, 0, 2, 1);
    const double c20 = cof(0, 1, 1, 2, 0, 2, 1, 1);
    const double c21 = cof(0, 2, 1, 0, 0, 0, 1, 2);
    const double c22 = cof(0, 0, 1, 1, 0, 1, 1, 0);
    double det = vpu.smul(j[0][2], c02);
    det = vpu.sfma(j[0][1], c01, det);
    det = vpu.sfma(j[0][0], c00, det);
    const double invdet = vpu.sdiv(1.0, det);
    vpu.sstore(ch.itmp(0, 0) + iv, vpu.smul(c00, invdet));
    vpu.sstore(ch.itmp(0, 1) + iv, vpu.smul(c10, invdet));
    vpu.sstore(ch.itmp(0, 2) + iv, vpu.smul(c20, invdet));
    vpu.sstore(ch.itmp(1, 0) + iv, vpu.smul(c01, invdet));
    vpu.sstore(ch.itmp(1, 1) + iv, vpu.smul(c11, invdet));
    vpu.sstore(ch.itmp(1, 2) + iv, vpu.smul(c21, invdet));
    vpu.sstore(ch.itmp(2, 0) + iv, vpu.smul(c02, invdet));
    vpu.sstore(ch.itmp(2, 1) + iv, vpu.smul(c12, invdet));
    vpu.sstore(ch.itmp(2, 2) + iv, vpu.smul(c22, invdet));
    vpu.sstore(ch.gpvol(g) + iv, vpu.smul(det, sh.weight(g)));
  }
}

// gpcar(d,a) = Σ_j itmp(j,d)·∂N_a/∂ξ_j
void s3_car_vector(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g,
                   int off, int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  vpu.set_vl(n);
  for (int d = 0; d < kDim; ++d) {
    const Vec i0 = vpu.vload(ch.itmp(0, d) + off);
    const Vec i1 = vpu.vload(ch.itmp(1, d) + off);
    const Vec i2 = vpu.vload(ch.itmp(2, d) + off);
    for (int a = 0; a < kNodes; ++a) {
      Vec t = vpu.vmul_s(i0, sh.dn(g, 0, a));
      t = vpu.vfma_s(i1, sh.dn(g, 1, a), t);
      t = vpu.vfma_s(i2, sh.dn(g, 2, a), t);
      vpu.vstore(ch.gpcar(g, d, a) + off, t);
    }
  }
}

void s3_car_scalar(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g,
                   int off, int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  for (int iv = off; iv < off + n; ++iv) {
    for (int d = 0; d < kDim; ++d) {
      const double i0 = vpu.sload(ch.itmp(0, d) + iv);
      const double i1 = vpu.sload(ch.itmp(1, d) + iv);
      const double i2 = vpu.sload(ch.itmp(2, d) + iv);
      for (int a = 0; a < kNodes; ++a) {
        double t = vpu.smul(i0, sh.dn(g, 0, a));
        t = vpu.sfma(i1, sh.dn(g, 1, a), t);
        t = vpu.sfma(i2, sh.dn(g, 2, a), t);
        vpu.sstore(ch.gpcar(g, d, a) + iv, t);
      }
    }
  }
}

}  // namespace

void phase3(Vpu& vpu, const Ctx& ctx, ElementChunk& ch) {
  const PhasePlan& plan = *ctx.plan;
  const int vs = ch.vs();
  const int gs = detail::group_size(vpu, ch);
  for (int off = 0; off < vs; off += gs) {
    const int n = gs < vs - off ? gs : vs - off;
    for (int g = 0; g < kGauss; ++g) {
      if (plan.p3_jac.vectorize) {
        s1_jac_vector(vpu, ctx, ch, g, off, n);
      } else {
        s1_jac_scalar(vpu, ctx, ch, g, off, n);
      }
      if (plan.p3_inv.vectorize) {
        s2_inv_vector(vpu, ctx, ch, g, off, n);
      } else {
        s2_inv_scalar(vpu, ctx, ch, g, off, n);
      }
      if (plan.p3_car.vectorize) {
        s3_car_vector(vpu, ctx, ch, g, off, n);
      } else {
        s3_car_scalar(vpu, ctx, ch, g, off, n);
      }
    }
  }
}

}  // namespace vecfd::miniapp
