#include "miniapp/checkpoint.h"

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "solver/krylov.h"

namespace vecfd::miniapp {

namespace {

// ---- little-endian payload primitives -------------------------------------
// Fixed-width, explicitly little-endian encoding: a checkpoint written on
// any host reads back identically on any other.  Doubles travel as their
// IEEE-754 bit pattern (std::bit_cast), never through text — the whole
// point of the format is BIT-identity of fields and residual histories.

struct Writer {
  std::vector<std::uint8_t> buf;
};

void put_u8(Writer& w, std::uint8_t v) { w.buf.push_back(v); }

void put_u32(Writer& w, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    w.buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(Writer& w, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    w.buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i64(Writer& w, std::int64_t v) {
  put_u64(w, static_cast<std::uint64_t>(v));
}

void put_f64(Writer& w, double v) {
  put_u64(w, std::bit_cast<std::uint64_t>(v));
}

struct Reader {
  const std::vector<std::uint8_t>* buf = nullptr;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (pos + n > buf->size()) {
      throw std::runtime_error("checkpoint: truncated payload");
    }
  }
};

std::uint8_t get_u8(Reader& r) {
  r.need(1);
  return (*r.buf)[r.pos++];
}

std::uint32_t get_u32(Reader& r) {
  r.need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>((*r.buf)[r.pos++]) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(Reader& r) {
  r.need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>((*r.buf)[r.pos++]) << (8 * i);
  }
  return v;
}

std::int64_t get_i64(Reader& r) {
  return static_cast<std::int64_t>(get_u64(r));
}

double get_f64(Reader& r) { return std::bit_cast<double>(get_u64(r)); }

/// Length prefixes are u64 but sanity-capped on read so a corrupt length
/// fails with a clear message instead of a bad_alloc.
std::size_t get_len(Reader& r, const char* what) {
  const std::uint64_t n = get_u64(r);
  constexpr std::uint64_t kMaxLen = 1ull << 40;
  if (n > kMaxLen) {
    throw std::runtime_error(std::string("checkpoint: implausible ") + what +
                             " length (corrupt payload?)");
  }
  return static_cast<std::size_t>(n);
}

void put_vec_f64(Writer& w, const std::vector<double>& v) {
  put_u64(w, v.size());
  for (double x : v) put_f64(w, x);
}

std::vector<double> get_vec_f64(Reader& r, const char* what) {
  const std::size_t n = get_len(r, what);
  r.need(n * 8);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = get_f64(r);
  return v;
}

void put_string(Writer& w, const std::string& s) {
  put_u64(w, s.size());
  w.buf.insert(w.buf.end(), s.begin(), s.end());
}

std::string get_string(Reader& r) {
  const std::size_t n = get_len(r, "string");
  r.need(n);
  std::string s(reinterpret_cast<const char*>(r.buf->data() + r.pos), n);
  r.pos += n;
  return s;
}

/// Counters travel with a count prefix so a checkpoint written under a
/// different VECFD_COUNTERS generation fails cleanly instead of smearing
/// values across fields.  Every registered counter round-trips via the
/// visit() visitors — a new counter is covered the moment it enters the
/// registry.
void put_counters(Writer& w, const sim::Counters& c) {
  put_u32(w, static_cast<std::uint32_t>(sim::kNumCounters));
  c.visit([&](const sim::CounterInfo&, const auto& v) {
    if constexpr (std::is_same_v<std::decay_t<decltype(v)>, double>) {
      put_f64(w, v);
    } else {
      put_u64(w, v);
    }
  });
}

sim::Counters get_counters(Reader& r) {
  const std::uint32_t n = get_u32(r);
  if (n != static_cast<std::uint32_t>(sim::kNumCounters)) {
    throw std::runtime_error(
        "checkpoint: counter registry mismatch (written with " +
        std::to_string(n) + " counters, this build has " +
        std::to_string(sim::kNumCounters) + ")");
  }
  sim::Counters c;
  c.visit([&](const sim::CounterInfo&, auto& v) {
    if constexpr (std::is_same_v<std::decay_t<decltype(v)>, double>) {
      v = get_f64(r);
    } else {
      v = get_u64(r);
    }
  });
  return c;
}

void put_counters_vec(Writer& w, const std::vector<sim::Counters>& cs) {
  put_u64(w, cs.size());
  for (const sim::Counters& c : cs) put_counters(w, c);
}

std::vector<sim::Counters> get_counters_vec(Reader& r) {
  const std::size_t n = get_len(r, "counter array");
  std::vector<sim::Counters> cs(n);
  for (std::size_t i = 0; i < n; ++i) cs[i] = get_counters(r);
  return cs;
}

void put_solve_report(Writer& w, const solver::SolveReport& rep) {
  put_u8(w, rep.converged ? 1 : 0);
  put_i64(w, rep.iterations);
  put_f64(w, rep.residual);
  put_vec_f64(w, rep.history);
  put_string(w, rep.failure);
}

solver::SolveReport get_solve_report(Reader& r) {
  solver::SolveReport rep;
  rep.converged = get_u8(r) != 0;
  rep.iterations = static_cast<int>(get_i64(r));
  rep.residual = get_f64(r);
  rep.history = get_vec_f64(r, "residual history");
  rep.failure = get_string(r);
  // Every serialized report passed this gate at its solver exit; running
  // it again on load turns a payload that decodes but breaks the history
  // invariant into a loud failure instead of a corrupt resume.
  return solver::checked(rep);
}

void put_step_reports(Writer& w, const std::vector<StepReport>& steps) {
  put_u64(w, steps.size());
  for (const StepReport& s : steps) {
    put_f64(w, s.time);
    for (const solver::SolveReport& m : s.momentum) put_solve_report(w, m);
    put_solve_report(w, s.pressure);
    put_f64(w, s.div_before);
    put_f64(w, s.div_after);
    put_f64(w, s.cycles);
  }
}

std::vector<StepReport> get_step_reports(Reader& r) {
  const std::size_t n = get_len(r, "step report array");
  std::vector<StepReport> steps(n);
  for (StepReport& s : steps) {
    s.time = get_f64(r);
    for (solver::SolveReport& m : s.momentum) m = get_solve_report(r);
    s.pressure = get_solve_report(r);
    s.div_before = get_f64(r);
    s.div_after = get_f64(r);
    s.cycles = get_f64(r);
  }
  return steps;
}

// ---- file framing ----------------------------------------------------------

constexpr std::array<std::uint8_t, 7> kMagic = {'V', 'F', 'C', 'K',
                                                'P', 'T', '\0'};
/// magic(7) + version(1) + payload size(8) + crc32(4)
constexpr std::size_t kHeaderSize = 7 + 1 + 8 + 4;

// ---- FNV-1a config hashing -------------------------------------------------

struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, 8); }
  void i(int v) { u64(static_cast<std::uint64_t>(static_cast<long>(v))); }
  void b(bool v) { u64(v ? 1u : 0u); }
  void f(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  // IEEE 802.3 reflected polynomial, table built on first use.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::vector<std::uint8_t> serialize_state(const TimeLoopCheckpoint& c) {
  Writer w;
  put_u64(w, c.config_hash);
  put_i64(w, c.next_step);
  put_f64(w, c.time);
  put_vec_f64(w, c.unknowns);
  put_vec_f64(w, c.unknowns_old);
  put_step_reports(w, c.step_reports);
  put_counters(w, c.total_counters);
  put_counters_vec(w, c.phase_counters);
  put_u8(w, c.all_converged ? 1 : 0);
  put_f64(w, c.pressure_makespan_cycles);
  return std::move(w.buf);
}

TimeLoopCheckpoint deserialize_state(const std::vector<std::uint8_t>& buf) {
  Reader r;
  r.buf = &buf;
  TimeLoopCheckpoint c;
  c.config_hash = get_u64(r);
  c.next_step = get_i64(r);
  c.time = get_f64(r);
  c.unknowns = get_vec_f64(r, "unknowns");
  c.unknowns_old = get_vec_f64(r, "unknowns_old");
  c.step_reports = get_step_reports(r);
  c.total_counters = get_counters(r);
  c.phase_counters = get_counters_vec(r);
  c.all_converged = get_u8(r) != 0;
  c.pressure_makespan_cycles = get_f64(r);
  if (r.pos != buf.size()) {
    throw std::runtime_error("checkpoint: trailing bytes after payload");
  }
  return c;
}

void save_checkpoint(const std::string& path, const TimeLoopCheckpoint& c) {
  const std::vector<std::uint8_t> payload = serialize_state(c);

  Writer w;
  w.buf.reserve(kHeaderSize + payload.size());
  for (std::uint8_t m : kMagic) put_u8(w, m);
  put_u8(w, kCheckpointVersion);
  put_u64(w, payload.size());
  put_u32(w, crc32(payload.data(), payload.size()));
  w.buf.insert(w.buf.end(), payload.begin(), payload.end());

  // Atomic publish: the file under the real name is always complete.  An
  // interrupted writer leaves only `<path>.tmp`, which --resume rejects.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("checkpoint: cannot open " + tmp);
  }
  const std::size_t wrote = std::fwrite(w.buf.data(), 1, w.buf.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (wrote != w.buf.size() || !flushed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: cannot rename " + tmp + " to " +
                             path);
  }
}

TimeLoopCheckpoint load_checkpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("checkpoint: cannot open " + path);
  }
  std::vector<std::uint8_t> raw;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    raw.insert(raw.end(), chunk, chunk + got);
  }
  std::fclose(f);

  if (raw.size() < kHeaderSize) {
    throw std::runtime_error("checkpoint: " + path + " is truncated");
  }
  if (std::memcmp(raw.data(), kMagic.data(), kMagic.size()) != 0) {
    throw std::runtime_error("checkpoint: " + path +
                             " is not a vecfd checkpoint (bad magic)");
  }
  const std::uint8_t version = raw[kMagic.size()];
  if (version != kCheckpointVersion) {
    throw std::runtime_error(
        "checkpoint: " + path + " has format version " +
        std::to_string(version) + ", this build reads version " +
        std::to_string(kCheckpointVersion));
  }
  Reader hr;
  hr.buf = &raw;
  hr.pos = kMagic.size() + 1;
  const std::uint64_t payload_size = get_u64(hr);
  const std::uint32_t want_crc = get_u32(hr);
  if (raw.size() - kHeaderSize != payload_size) {
    throw std::runtime_error("checkpoint: " + path +
                             " payload size mismatch (truncated?)");
  }
  const std::uint32_t have_crc =
      crc32(raw.data() + kHeaderSize, static_cast<std::size_t>(payload_size));
  if (have_crc != want_crc) {
    throw std::runtime_error("checkpoint: " + path + " CRC mismatch");
  }
  std::vector<std::uint8_t> payload(raw.begin() + kHeaderSize, raw.end());
  return deserialize_state(payload);
}

std::uint64_t timeloop_config_hash(const std::string& scenario_name,
                                   const fem::Mesh& mesh,
                                   const TimeLoopConfig& cfg,
                                   const sim::MachineConfig& machine) {
  Fnv h;
  h.str(scenario_name);
  h.i(mesh.config().nx);
  h.i(mesh.config().ny);
  h.i(mesh.config().nz);
  h.i(mesh.num_nodes());
  h.i(mesh.num_elements());

  h.i(cfg.steps);
  h.i(cfg.vector_size);
  h.i(static_cast<int>(cfg.opt));
  for (const solver::SolveOptions* so : {&cfg.momentum, &cfg.pressure}) {
    h.i(so->max_iterations);
    h.f(so->rel_tolerance);
    h.b(so->jacobi_precondition);
    h.i(static_cast<int>(so->precond.kind));
    h.i(so->precond.cheby_degree);
    h.i(so->precond.power_iterations);
    h.f(so->precond.cheby_boost);
    h.f(so->precond.cheby_ratio);
    h.i(so->precond.coarse_max_iterations);
    h.f(so->precond.coarse_rel_tolerance);
  }
  h.b(cfg.blocked_momentum);
  h.i(static_cast<int>(cfg.format));
  h.b(cfg.rcm_renumber);
  h.i(static_cast<int>(cfg.precond));
  h.i(cfg.shards);
  h.i(cfg.checkpoint_every);

  h.str(machine.name);
  h.b(machine.vector_enabled);
  h.i(machine.vlmax);
  h.i(machine.lanes);
  h.f(machine.frequency_mhz);
  return h.h;
}

}  // namespace vecfd::miniapp
