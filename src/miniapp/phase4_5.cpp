// Phase 4: interpolate nodal data to the integration points (gpvel for two
// time levels, gpadv, the velocity gradient gpgve, gppre).
// Phase 5: the time-integration elemental arrays — SUPG τ, the weighted RHS
// rt = (ρf + dtfac·u_old)·gpvol, pt = gppre·gpvol, and the mass block when
// the semi-implicit scheme is active.
#include "miniapp/phases.h"

namespace vecfd::miniapp {

using fem::kDim;
using fem::kGauss;
using fem::kNodes;
using sim::Vec;
using sim::Vpu;

namespace {

// ---- phase 4 subkernels ---------------------------------------------------

void p4_vel_vector(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g,
                   int off, int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  vpu.set_vl(n);
  for (int l = 0; l < 2; ++l) {
    for (int d = 0; d < kDim; ++d) {
      auto plane = [&](int a) {
        return l == 0 ? ch.elvel(d, a) : ch.elvel_old(d, a);
      };
      Vec acc = vpu.vmul_s(vpu.vload(plane(0) + off), sh.n(g, 0));
      for (int a = 1; a < kNodes; ++a) {
        acc = vpu.vfma_s(vpu.vload(plane(a) + off), sh.n(g, a), acc);
      }
      vpu.vstore(ch.gpvel(l, g, d) + off, acc);
      if (l == 0) vpu.vstore(ch.gpadv(g, d) + off, acc);
    }
  }
}

void p4_vel_scalar(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g,
                   int off, int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  for (int iv = off; iv < off + n; ++iv) {
    for (int l = 0; l < 2; ++l) {
      for (int d = 0; d < kDim; ++d) {
        auto plane = [&](int a) {
          return l == 0 ? ch.elvel(d, a) : ch.elvel_old(d, a);
        };
        double acc = vpu.smul(vpu.sload(plane(0) + iv), sh.n(g, 0));
        for (int a = 1; a < kNodes; ++a) {
          acc = vpu.sfma(vpu.sload(plane(a) + iv), sh.n(g, a), acc);
        }
        vpu.sstore(ch.gpvel(l, g, d) + iv, acc);
        if (l == 0) vpu.sstore(ch.gpadv(g, d) + iv, acc);
      }
    }
  }
}

void p4_gve_vector(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g,
                   int off, int n) {
  (void)ctx;
  vpu.set_vl(n);
  for (int j = 0; j < kDim; ++j) {
    Vec car[kNodes];
    for (int a = 0; a < kNodes; ++a) {
      car[a] = vpu.vload(ch.gpcar(g, j, a) + off);
    }
    for (int d = 0; d < kDim; ++d) {
      Vec acc = vpu.vmul(car[0], vpu.vload(ch.elvel(d, 0) + off));
      for (int a = 1; a < kNodes; ++a) {
        acc = vpu.vfma(car[a], vpu.vload(ch.elvel(d, a) + off), acc);
      }
      vpu.vstore(ch.gpgve(g, j, d) + off, acc);
    }
  }
}

void p4_gve_scalar(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g,
                   int off, int n) {
  (void)ctx;
  for (int iv = off; iv < off + n; ++iv) {
    for (int j = 0; j < kDim; ++j) {
      double car[kNodes];
      for (int a = 0; a < kNodes; ++a) {
        car[a] = vpu.sload(ch.gpcar(g, j, a) + iv);
      }
      for (int d = 0; d < kDim; ++d) {
        double acc = vpu.smul(car[0], vpu.sload(ch.elvel(d, 0) + iv));
        for (int a = 1; a < kNodes; ++a) {
          acc = vpu.sfma(car[a], vpu.sload(ch.elvel(d, a) + iv), acc);
        }
        vpu.sstore(ch.gpgve(g, j, d) + iv, acc);
      }
    }
  }
}

void p4_pre_vector(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g,
                   int off, int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  vpu.set_vl(n);
  Vec acc = vpu.vmul_s(vpu.vload(ch.elpre(0) + off), sh.n(g, 0));
  for (int a = 1; a < kNodes; ++a) {
    acc = vpu.vfma_s(vpu.vload(ch.elpre(a) + off), sh.n(g, a), acc);
  }
  vpu.vstore(ch.gppre(g) + off, acc);
}

void p4_pre_scalar(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g,
                   int off, int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  for (int iv = off; iv < off + n; ++iv) {
    double acc = vpu.smul(vpu.sload(ch.elpre(0) + iv), sh.n(g, 0));
    for (int a = 1; a < kNodes; ++a) {
      acc = vpu.sfma(vpu.sload(ch.elpre(a) + iv), sh.n(g, a), acc);
    }
    vpu.sstore(ch.gppre(g) + iv, acc);
  }
}

// ---- phase 5 subkernels ---------------------------------------------------

void p5_tau_rhs_vector(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g,
                       int off, int n) {
  const fem::Physics& phys = ctx.state->physics();
  vpu.set_vl(n);
  const Vec vol = vpu.vload(ch.gpvol(g) + off);
  const Vec h = vpu.vcbrt(vol);
  const Vec a0 = vpu.vload(ch.gpadv(g, 0) + off);
  const Vec a1 = vpu.vload(ch.gpadv(g, 1) + off);
  const Vec a2 = vpu.vload(ch.gpadv(g, 2) + off);
  Vec s = vpu.vmul(a0, a0);
  s = vpu.vfma(a1, a1, s);
  s = vpu.vfma(a2, a2, s);
  const Vec advn = vpu.vsqrt(s);
  const Vec t1 = vpu.vmul(h, h);
  const Vec t2 = vpu.vmul_s(t1, phys.density);
  const Vec num = vpu.vsplat(4.0 * phys.viscosity);
  const Vec d1 = vpu.vdiv(num, t2);
  const Vec t4 = vpu.vmul_s(advn, 2.0);
  const Vec d2 = vpu.vdiv(t4, h);
  Vec den = vpu.vadd(d1, d2);
  const Vec dtf = vpu.vload(ch.dtfac() + off);
  den = vpu.vadd(den, dtf);
  Vec g00 = vpu.vload(ch.gpgve(g, 0, 0) + off);
  Vec s2 = vpu.vmul(g00, g00);
  for (int j = 0; j < kDim; ++j) {
    for (int d = 0; d < kDim; ++d) {
      if (j == 0 && d == 0) continue;
      const Vec gv = vpu.vload(ch.gpgve(g, j, d) + off);
      s2 = vpu.vfma(gv, gv, s2);
    }
  }
  const Vec gn = vpu.vsqrt(s2);
  den = vpu.vfma_s(gn, 0.1, den);
  const Vec one = vpu.vsplat(1.0);
  const Vec tau = vpu.vdiv(one, den);
  vpu.vstore(ch.tau(g) + off, tau);
  for (int d = 0; d < kDim; ++d) {
    const double cd = phys.density * phys.force[d];
    const Vec uold = vpu.vload(ch.gpvel(1, g, d) + off);
    const Vec t = vpu.vmul(dtf, uold);
    const Vec f = vpu.vadd_s(t, cd);
    const Vec rt = vpu.vmul(f, vol);
    vpu.vstore(ch.gprhs(g, d) + off, rt);
  }
  const Vec pre = vpu.vload(ch.gppre(g) + off);
  const Vec pt = vpu.vmul(pre, vol);
  vpu.vstore(ch.gppre_t(g) + off, pt);
}

void p5_tau_rhs_scalar(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int g,
                       int off, int n) {
  const fem::Physics& phys = ctx.state->physics();
  for (int iv = off; iv < off + n; ++iv) {
    const double vol = vpu.sload(ch.gpvol(g) + iv);
    const double h = vpu.scbrt(vol);
    const double a0 = vpu.sload(ch.gpadv(g, 0) + iv);
    const double a1 = vpu.sload(ch.gpadv(g, 1) + iv);
    const double a2 = vpu.sload(ch.gpadv(g, 2) + iv);
    double s = vpu.smul(a0, a0);
    s = vpu.sfma(a1, a1, s);
    s = vpu.sfma(a2, a2, s);
    const double advn = vpu.ssqrt(s);
    const double t1 = vpu.smul(h, h);
    const double t2 = vpu.smul(t1, phys.density);
    const double d1 = vpu.sdiv(4.0 * phys.viscosity, t2);
    const double t4 = vpu.smul(advn, 2.0);
    const double d2 = vpu.sdiv(t4, h);
    double den = vpu.sadd(d1, d2);
    const double dtf = vpu.sload(ch.dtfac() + iv);
    den = vpu.sadd(den, dtf);
    const double g00 = vpu.sload(ch.gpgve(g, 0, 0) + iv);
    double s2 = vpu.smul(g00, g00);
    for (int j = 0; j < kDim; ++j) {
      for (int d = 0; d < kDim; ++d) {
        if (j == 0 && d == 0) continue;
        const double gv = vpu.sload(ch.gpgve(g, j, d) + iv);
        s2 = vpu.sfma(gv, gv, s2);
      }
    }
    const double gn = vpu.ssqrt(s2);
    den = vpu.sfma(gn, 0.1, den);
    const double tau = vpu.sdiv(1.0, den);
    vpu.sstore(ch.tau(g) + iv, tau);
    for (int d = 0; d < kDim; ++d) {
      const double cd = phys.density * phys.force[d];
      const double uold = vpu.sload(ch.gpvel(1, g, d) + iv);
      const double t = vpu.smul(dtf, uold);
      const double f = vpu.sadd(t, cd);
      const double rt = vpu.smul(f, vol);
      vpu.sstore(ch.gprhs(g, d) + iv, rt);
    }
    const double pre = vpu.sload(ch.gppre(g) + iv);
    const double pt = vpu.smul(pre, vol);
    vpu.sstore(ch.gppre_t(g) + iv, pt);
  }
}

void p5_mass_vector(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int off,
                    int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  vpu.set_vl(n);
  Vec vol[kGauss];
  for (int g = 0; g < kGauss; ++g) vol[g] = vpu.vload(ch.gpvol(g) + off);
  for (int a = 0; a < kNodes; ++a) {
    for (int b = 0; b < kNodes; ++b) {
      Vec acc = vpu.vmul_s(vol[0], sh.n(0, a) * sh.n(0, b));
      for (int g = 1; g < kGauss; ++g) {
        acc = vpu.vfma_s(vol[g], sh.n(g, a) * sh.n(g, b), acc);
      }
      vpu.vstore(ch.mass(a, b) + off, acc);
    }
  }
}

void p5_mass_scalar(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int off,
                    int n) {
  const fem::ShapeTable& sh = *ctx.shape;
  for (int iv = off; iv < off + n; ++iv) {
    double vol[kGauss];
    for (int g = 0; g < kGauss; ++g) vol[g] = vpu.sload(ch.gpvol(g) + iv);
    for (int a = 0; a < kNodes; ++a) {
      for (int b = 0; b < kNodes; ++b) {
        double acc = vpu.smul(vol[0], sh.n(0, a) * sh.n(0, b));
        for (int g = 1; g < kGauss; ++g) {
          acc = vpu.sfma(vol[g], sh.n(g, a) * sh.n(g, b), acc);
        }
        vpu.sstore(ch.mass(a, b) + iv, acc);
      }
    }
  }
}

}  // namespace

void phase4(Vpu& vpu, const Ctx& ctx, ElementChunk& ch) {
  const PhasePlan& plan = *ctx.plan;
  const int vs = ch.vs();
  const int gs = detail::group_size(vpu, ch);
  for (int off = 0; off < vs; off += gs) {
    const int n = gs < vs - off ? gs : vs - off;
    for (int g = 0; g < kGauss; ++g) {
      if (plan.p4_vel.vectorize) {
        p4_vel_vector(vpu, ctx, ch, g, off, n);
      } else {
        p4_vel_scalar(vpu, ctx, ch, g, off, n);
      }
      if (plan.p4_gve.vectorize) {
        p4_gve_vector(vpu, ctx, ch, g, off, n);
      } else {
        p4_gve_scalar(vpu, ctx, ch, g, off, n);
      }
      if (plan.p4_pre.vectorize) {
        p4_pre_vector(vpu, ctx, ch, g, off, n);
      } else {
        p4_pre_scalar(vpu, ctx, ch, g, off, n);
      }
    }
  }
}

void phase5(Vpu& vpu, const Ctx& ctx, ElementChunk& ch) {
  const PhasePlan& plan = *ctx.plan;
  const bool with_mass = ctx.cfg.scheme == fem::Scheme::kSemiImplicit;
  const int vs = ch.vs();
  const int gs = detail::group_size(vpu, ch);
  for (int off = 0; off < vs; off += gs) {
    const int n = gs < vs - off ? gs : vs - off;
    for (int g = 0; g < kGauss; ++g) {
      if (plan.p5_tau.vectorize) {
        p5_tau_rhs_vector(vpu, ctx, ch, g, off, n);
      } else {
        p5_tau_rhs_scalar(vpu, ctx, ch, g, off, n);
      }
    }
    if (with_mass) {
      if (plan.p5_mass.vectorize) {
        p5_mass_vector(vpu, ctx, ch, off, n);
      } else {
        p5_mass_scalar(vpu, ctx, ch, off, n);
      }
    }
  }
}

}  // namespace vecfd::miniapp
