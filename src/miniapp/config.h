// vecfd::miniapp — run configuration of the Nastin assembly mini-app.
#pragma once

#include <string_view>

#include "fem/scheme.h"
#include "solver/format.h"

namespace vecfd::miniapp {

/// Cumulative optimization levels, in the order the paper applies them (§4):
///   kScalar   — auto-vectorization disabled (the Table 3 baseline)
///   kVanilla  — auto-vectorization on, no source changes (Figure 2)
///   kVec2     — + phase-2 VECTOR_DIM made a compile-time constant; the
///               compiler vectorizes the short per-node dof loop (AVL ≈ 4,
///               counter-productive — Figure 5)
///   kIVec2    — + phase-2 loop interchange: the element (ivect) dimension
///               becomes innermost (Figure 6)
///   kVec1     — + phase-1 loop fission separating non-vectorizable work A
///               from vectorizable work B (Figure 7)
enum class OptLevel { kScalar, kVanilla, kVec2, kIVec2, kVec1 };

constexpr std::string_view to_string(OptLevel o) {
  switch (o) {
    case OptLevel::kScalar:  return "scalar";
    case OptLevel::kVanilla: return "vanilla";
    case OptLevel::kVec2:    return "VEC2";
    case OptLevel::kIVec2:   return "IVEC2";
    case OptLevel::kVec1:    return "VEC1";
  }
  return "?";
}

/// The VECTOR_SIZE values studied in the paper (§2.3).  240 is the
/// micro-architectural sweet spot (multiple of 8 lanes × 5 FSM groups).
inline constexpr int kStudiedVectorSizes[] = {16, 64, 128, 240, 256, 512};

struct MiniAppConfig {
  int vector_size = 240;  ///< Alya's VECTOR_SIZE chunk parameter
  fem::Scheme scheme = fem::Scheme::kExplicit;
  OptLevel opt = OptLevel::kVanilla;

  /// Chain the instrumented Krylov solve (phase 9) after assembly: the
  /// x-momentum system K·u = f is solved with the long-vector BiCGStab of
  /// solver/vkernels.h, strip-mined at `vector_size`.  Requires the
  /// semi-implicit scheme (the explicit scheme assembles no matrix).
  bool run_solve = false;
  int solve_max_iterations = 500;
  double solve_rel_tolerance = 1e-10;
  /// Operator storage format of the chained solve (and the transient
  /// loop's solves; DESIGN.md §6).  Residual histories are bit-identical
  /// across formats — this knob trades counters, not numerics.
  solver::SpmvFormat solve_format = solver::SpmvFormat::kEll;
};

}  // namespace vecfd::miniapp
