#include "miniapp/native_kernels.h"

#include "fem/element.h"

namespace vecfd::miniapp::native {

using fem::kDim;
using fem::kDofs;
using fem::kGauss;
using fem::kNodes;

void phase2_vanilla(const std::int32_t* lnods, const double* unk,
                    const double* unk_old, double* elunk, double* elvel_old,
                    const int* bound) {
  // `*bound` is deliberately re-read every iteration: the compiler must
  // assume the stores below may alias it, blocking vectorization.
  const int vs = *bound;
  for (int iv = 0; iv < *bound; ++iv) {
    for (int a = 0; a < kNodes; ++a) {
      const std::int32_t n = lnods[a * vs + iv];
      const std::size_t base = static_cast<std::size_t>(n) * kDofs;
      for (int dof = 0; dof < kDofs; ++dof) {
        elunk[(dof * kNodes + a) * vs + iv] = unk[base + dof];
      }
      for (int d = 0; d < kDim; ++d) {
        elvel_old[(d * kNodes + a) * vs + iv] = unk_old[base + d];
      }
    }
  }
}

void phase2_dof_inner(const std::int32_t* lnods, const double* unk,
                      const double* unk_old, double* elunk,
                      double* elvel_old, int vs) {
  for (int iv = 0; iv < vs; ++iv) {
    for (int a = 0; a < kNodes; ++a) {
      const std::int32_t n = lnods[a * vs + iv];
      const std::size_t base = static_cast<std::size_t>(n) * kDofs;
      for (int dof = 0; dof < kDofs; ++dof) {
        elunk[(dof * kNodes + a) * vs + iv] = unk[base + dof];
      }
      for (int d = 0; d < kDim; ++d) {
        elvel_old[(d * kNodes + a) * vs + iv] = unk_old[base + d];
      }
    }
  }
}

void phase2_ivect_inner(const std::int32_t* lnods, const double* unk,
                        const double* unk_old, double* elunk,
                        double* elvel_old, int vs) {
  for (int a = 0; a < kNodes; ++a) {
    for (int dof = 0; dof < kDofs; ++dof) {
      double* dst = elunk + (dof * kNodes + a) * vs;
      const std::int32_t* ln = lnods + a * vs;
      for (int iv = 0; iv < vs; ++iv) {
        dst[iv] = unk[static_cast<std::size_t>(ln[iv]) * kDofs + dof];
      }
    }
    for (int d = 0; d < kDim; ++d) {
      double* dst = elvel_old + (d * kNodes + a) * vs;
      const std::int32_t* ln = lnods + a * vs;
      for (int iv = 0; iv < vs; ++iv) {
        dst[iv] = unk_old[static_cast<std::size_t>(ln[iv]) * kDofs + d];
      }
    }
  }
}

namespace {
inline void work_a(const std::int32_t* mesh_lnods, const std::int32_t* elmat,
                   std::int32_t* lnods, double* dtfac, int first, int vs,
                   double base_dt, int iv) {
  const int e = first + iv;
  for (int a = 0; a < kNodes; ++a) {
    lnods[a * vs + iv] = mesh_lnods[static_cast<std::size_t>(e) * kNodes + a];
  }
  dtfac[iv] = elmat[e] == 0 ? base_dt : 1.02 * base_dt;
}

inline void work_b(const double* coords, const std::int32_t* lnods,
                   double* elcod, int vs, int iv) {
  for (int a = 0; a < kNodes; ++a) {
    const std::int32_t n = lnods[a * vs + iv];
    for (int d = 0; d < kDim; ++d) {
      elcod[(d * kNodes + a) * vs + iv] =
          coords[static_cast<std::size_t>(n) * kDim + d];
    }
  }
}
}  // namespace

void phase1_fused(const std::int32_t* mesh_lnods, const std::int32_t* elmat,
                  const double* coords, std::int32_t* lnods, double* dtfac,
                  double* elcod, int first, int vs, double base_dt) {
  for (int iv = 0; iv < vs; ++iv) {
    work_a(mesh_lnods, elmat, lnods, dtfac, first, vs, base_dt, iv);
    work_b(coords, lnods, elcod, vs, iv);
  }
}

void phase1_split(const std::int32_t* mesh_lnods, const std::int32_t* elmat,
                  const double* coords, std::int32_t* lnods, double* dtfac,
                  double* elcod, int first, int vs, double base_dt) {
  for (int iv = 0; iv < vs; ++iv) {
    work_a(mesh_lnods, elmat, lnods, dtfac, first, vs, base_dt, iv);
  }
  // fissioned work B: dense gathers over the long dimension
  for (int a = 0; a < kNodes; ++a) {
    const std::int32_t* ln = lnods + a * vs;
    for (int d = 0; d < kDim; ++d) {
      double* dst = elcod + (d * kNodes + a) * vs;
      for (int iv = 0; iv < vs; ++iv) {
        dst[iv] = coords[static_cast<std::size_t>(ln[iv]) * kDim + d];
      }
    }
  }
}

void conv_block(const double* wmat, const double* dmat, double* conv,
                int vs) {
  for (int a = 0; a < kNodes; ++a) {
    for (int b = 0; b < kNodes; ++b) {
      double* dst = conv + (a * kNodes + b) * vs;
      for (int iv = 0; iv < vs; ++iv) dst[iv] = 0.0;
      for (int g = 0; g < kGauss; ++g) {
        const double* w = wmat + (g * kNodes + a) * vs;
        const double* d = dmat + (g * kNodes + b) * vs;
        for (int iv = 0; iv < vs; ++iv) {
          dst[iv] = w[iv] * d[iv] + dst[iv];
        }
      }
    }
  }
}

double checksum(const double* p, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += p[i];
  return s;
}

}  // namespace vecfd::miniapp::native
