// Phases 1 and 2: gather from the global mesh/state into the chunk-local
// SoA arrays.  These are the memory-bound phases whose vectorization the
// paper's VEC1 / VEC2 / IVEC2 optimizations target.
#include "miniapp/phases.h"

namespace vecfd::miniapp {

using fem::kDim;
using fem::kDofs;
using fem::kNodes;
using sim::Vec;
using sim::Vpu;

namespace {

// ---- phase 1 -----------------------------------------------------------

/// Work A: per-element bookkeeping — connectivity gather, material lookup,
/// time-step factor, validity flag.  Short branchy indexed loops: never
/// vectorized (and in the fused form it drags work B down with it).
void p1_work_a(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int iv) {
  const fem::Mesh& mesh = *ctx.mesh;
  const fem::Physics& phys = ctx.state->physics();
  const double base_dt = phys.density / phys.dt;

  vpu.sarith(2);  // bounds compare + select
  const bool ok = iv < ch.count();
  vpu.sstore_i32(ch.valid() + iv, ok ? 1 : 0);
  // Padding lanes clamp to the chunk's first element so downstream phases
  // compute well-defined (discarded) values.
  const int e = ok ? ch.first() + iv : ch.first();
  std::int32_t ln[kNodes];
  for (int a = 0; a < kNodes; ++a) {
    ln[a] = vpu.sload_i32(mesh.lnods_data() +
                          static_cast<std::size_t>(e) * kNodes + a);
    vpu.sstore_i32(ch.lnods(a) + iv, ln[a]);
  }
  const std::int32_t mat = vpu.sload_i32(mesh.material_data() + e);
  vpu.sarith(2);  // branch + scale
  const double f = mat == 0 ? base_dt : 1.02 * base_dt;
  vpu.sstore(ch.dtfac() + iv, f);
  // element-type dispatch (Alya selects shape tables per element type):
  // connectivity sanity fold + a first-node geometry probe.  All branchy
  // integer work — exactly what keeps work A off the VPU.
  std::int32_t fold = ln[0];
  for (int a = 1; a < kNodes; ++a) {
    fold ^= ln[a];
    vpu.sarith(1);
  }
  const double* x0 = mesh.coords_data() + static_cast<std::size_t>(ln[0]) * kDim;
  double inside = 0.0;
  for (int d = 0; d < kDim; ++d) {
    const double c = vpu.sload(x0 + d);
    vpu.sarith(2);  // two bound compares per dimension
    inside += c;
  }
  vpu.sarith(3);  // type selection cascade
  const std::int32_t etype = (fold >= 0 && inside > -1e30) ? 0 : -1;
  vpu.sstore_i32(ch.etype() + iv, etype);
}

/// Work B, scalar: gather the element node coordinates.
void p1_work_b_scalar(Vpu& vpu, const Ctx& ctx, ElementChunk& ch, int iv) {
  const fem::Mesh& mesh = *ctx.mesh;
  for (int a = 0; a < kNodes; ++a) {
    const std::int32_t n = vpu.sload_i32(ch.lnods(a) + iv);
    vpu.sarith(1);  // address scale
    for (int d = 0; d < kDim; ++d) {
      const double x =
          vpu.sload(mesh.coords_data() + static_cast<std::size_t>(n) * kDim + d);
      vpu.sstore(ch.elcod(d, a) + iv, x);
    }
  }
}

/// Work B, vector (the VEC1 fission product): indexed gathers over ivect.
void p1_work_b_vector(Vpu& vpu, const Ctx& ctx, ElementChunk& ch) {
  const fem::Mesh& mesh = *ctx.mesh;
  const int vs = ch.vs();
  for (int off = 0; off < vs;) {
    const int vl = vpu.set_vl(vs - off);
    for (int a = 0; a < kNodes; ++a) {
      const Vec idx = vpu.vload_i32(ch.lnods(a) + off);
      const Vec i3 = vpu.vimul_s(idx, kDim);
      for (int d = 0; d < kDim; ++d) {
        const Vec id = vpu.viadd_s(i3, d);
        const Vec x = vpu.vgather(mesh.coords_data(), id);
        vpu.vstore(ch.elcod(d, a) + off, x);
      }
    }
    off += vl;
  }
}

// ---- phase 2 -----------------------------------------------------------

/// Vanilla: outer ivect loop with the VECTOR_DIM bound re-loaded from
/// memory every iteration — the compiler cannot vectorize anything here.
void p2_scalar(Vpu& vpu, const Ctx& ctx, ElementChunk& ch,
               bool reload_bound) {
  const double* unk = ctx.state->unknowns_data();
  const double* unk_old = ctx.state->unknowns_old_data();
  for (int iv = 0; iv < ch.vs(); ++iv) {
    if (reload_bound) {
      (void)vpu.sload(ctx.vector_dim_slot);  // fetch VECTOR_DIM
      vpu.sarith(1);                         // compare against it
    }
    for (int a = 0; a < kNodes; ++a) {
      const std::int32_t n = vpu.sload_i32(ch.lnods(a) + iv);
      vpu.sarith(1);  // base = n * kDofs
      const std::size_t base = static_cast<std::size_t>(n) * kDofs;
      for (int dof = 0; dof < kDofs; ++dof) {
        const double x = vpu.sload(unk + base + dof);
        vpu.sstore(ch.elunk(dof, a) + iv, x);
      }
      for (int d = 0; d < kDim; ++d) {
        const double x = vpu.sload(unk_old + base + d);
        vpu.sstore(ch.elvel_old(d, a) + iv, x);
      }
    }
  }
}

/// VEC2: constant bound lets the compiler vectorize the per-node dof copy —
/// vl = 4 (current u,v,w,p) and vl = 3 (old velocity).  Counter-productive:
/// the VPU issues tiny instructions.
void p2_vec2(Vpu& vpu, const Ctx& ctx, ElementChunk& ch) {
  const double* unk = ctx.state->unknowns_data();
  const double* unk_old = ctx.state->unknowns_old_data();
  const std::ptrdiff_t plane = static_cast<std::ptrdiff_t>(kNodes) * ch.vs();
  for (int iv = 0; iv < ch.vs(); ++iv) {
    for (int a = 0; a < kNodes; ++a) {
      const std::int32_t n = vpu.sload_i32(ch.lnods(a) + iv);
      vpu.sarith(1);
      const std::size_t base = static_cast<std::size_t>(n) * kDofs;
      vpu.set_vl(kDofs);
      const Vec cur = vpu.vload(unk + base);
      vpu.vstore_strided(ch.elunk(0, a) + iv, plane, cur);
      vpu.set_vl(kDim);
      const Vec old = vpu.vload(unk_old + base);
      vpu.vstore_strided(ch.elvel_old(0, a) + iv, plane, old);
    }
  }
}

/// IVEC2: interchanged loops put ivect innermost — long gathers.
void p2_ivec2(Vpu& vpu, const Ctx& ctx, ElementChunk& ch) {
  const double* unk = ctx.state->unknowns_data();
  const double* unk_old = ctx.state->unknowns_old_data();
  const int vs = ch.vs();
  for (int off = 0; off < vs;) {
    const int vl = vpu.set_vl(vs - off);
    for (int a = 0; a < kNodes; ++a) {
      const Vec idx = vpu.vload_i32(ch.lnods(a) + off);
      const Vec i4 = vpu.vimul_s(idx, kDofs);
      for (int dof = 0; dof < kDofs; ++dof) {
        const Vec id = vpu.viadd_s(i4, dof);
        const Vec x = vpu.vgather(unk, id);
        vpu.vstore(ch.elunk(dof, a) + off, x);
      }
      for (int d = 0; d < kDim; ++d) {
        const Vec id = vpu.viadd_s(i4, d);
        const Vec x = vpu.vgather(unk_old, id);
        vpu.vstore(ch.elvel_old(d, a) + off, x);
      }
    }
    off += vl;
  }
}

}  // namespace

void phase1(Vpu& vpu, const Ctx& ctx, ElementChunk& ch) {
  const PhasePlan& plan = *ctx.plan;
  if (plan.p1_split) {
    // VEC1: fissioned loops — work A first, then work B.
    for (int iv = 0; iv < ch.vs(); ++iv) p1_work_a(vpu, ctx, ch, iv);
    if (plan.p1_work_b.vectorize) {
      p1_work_b_vector(vpu, ctx, ch);
    } else {
      for (int iv = 0; iv < ch.vs(); ++iv) p1_work_b_scalar(vpu, ctx, ch, iv);
    }
  } else {
    // fused: one outer loop over elements, A then B per element — the shape
    // that defeats the vectorizer (§4, Algorithm 3).
    for (int iv = 0; iv < ch.vs(); ++iv) {
      p1_work_a(vpu, ctx, ch, iv);
      p1_work_b_scalar(vpu, ctx, ch, iv);
    }
  }
}

void phase2(Vpu& vpu, const Ctx& ctx, ElementChunk& ch) {
  const PhasePlan& plan = *ctx.plan;
  switch (plan.p2_shape) {
    case Phase2Shape::kScalarOuterIvect:
      p2_scalar(vpu, ctx, ch, /*reload_bound=*/true);
      break;
    case Phase2Shape::kDofInner:
      // the vl=4 dof copy needs registers that hold all four dofs; a
      // narrower machine strip-mines nothing useful here and the compiler
      // falls back to scalar
      if (plan.p2.vectorize && vpu.vlmax() >= fem::kDofs) {
        p2_vec2(vpu, ctx, ch);
      } else {
        p2_scalar(vpu, ctx, ch, /*reload_bound=*/false);
      }
      break;
    case Phase2Shape::kIvectInner:
      if (plan.p2.vectorize) {
        p2_ivec2(vpu, ctx, ch);
      } else {
        p2_scalar(vpu, ctx, ch, /*reload_bound=*/false);
      }
      break;
  }
}

}  // namespace vecfd::miniapp
