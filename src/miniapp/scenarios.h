// vecfd::miniapp — transient scenario library.
//
// A Scenario is everything the TimeLoop needs besides a mesh: physics,
// initial fields, velocity Dirichlet conditions (possibly time-dependent),
// the pressure pinning that makes the phase-10 Poisson solve well posed,
// and — when one exists — an analytic solution that turns the whole loop
// into a verifiable computation instead of a merely measurable one.
//
// The built-in scenarios (§ README "Scenario library"):
//
//   cavity        lid-driven cavity: no-slip walls, unit lid at z = lz,
//                 pressure pinned at node 0.  The classic enclosed-flow
//                 stress test for the projection (zero net boundary flux).
//   channel       pressure-driven channel on a 2×1×1 box: parabolic inflow
//                 at x = 0, no-slip side walls, free outflow at x = lx with
//                 the pressure increment pinned on the whole outlet plane.
//   taylor-green  decaying 2D Taylor–Green vortex extended uniformly in z,
//                 time-dependent analytic Dirichlet data on every boundary
//                 node and zero body force.  The analytic solution makes
//                 the full semi-implicit loop verifiable: L2 errors must
//                 shrink under mesh refinement (see test_time_loop).
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "fem/mesh.h"
#include "fem/state.h"

namespace vecfd::miniapp {

struct Scenario {
  std::string name;
  std::string description;

  /// Baseline mesh for campaign runs (tests/benches may refine it).
  fem::MeshConfig mesh;
  fem::Physics physics;

  /// Initial (u, v, w, p) at a node.  Evaluated for both time levels.
  std::function<std::array<double, fem::kDofs>(const fem::Mesh&, int node)>
      initial;

  /// Velocity Dirichlet condition: returns true and fills @p val when the
  /// node is constrained at time @p t.  Only ever true on boundary nodes.
  std::function<bool(const fem::Mesh&, int node, double t,
                     std::array<double, fem::kDim>& val)>
      velocity_bc;

  /// Nodes where the pressure increment φ is pinned to zero (phase 10).
  std::function<std::vector<int>(const fem::Mesh&)> pressure_pins;

  /// Analytic (u, v, w, p) at time @p t, or an empty function when the
  /// scenario has no closed-form solution.
  std::function<std::array<double, fem::kDofs>(const fem::Mesh&, int node,
                                               double t)>
      analytic;

  bool has_analytic() const { return static_cast<bool>(analytic); }
};

Scenario scenario_cavity();
Scenario scenario_channel();
Scenario scenario_taylor_green();

/// All built-in scenarios, campaign order: cavity, channel, taylor-green.
std::vector<Scenario> all_scenarios();

/// Look up a scenario by name; throws std::invalid_argument for unknown
/// names (the CLI turns that into the exit-2 contract).
Scenario scenario_by_name(const std::string& name);

}  // namespace vecfd::miniapp
