// vecfd::miniapp — the compiled shape of the mini-app.
//
// Each phase is split into the subkernels (loop nests) the auto-vectorizer
// analyzes independently.  `build_plan` describes every subkernel's source
// shape as a compiler::LoopInfo — which depends on the optimization level,
// because VEC2/IVEC2/VEC1 are *source* transformations — and records the
// model compiler's Decision for it.  The phase kernels then execute the
// scalar or vector path accordingly, which is exactly the contract between
// the application and the compiler that the paper's co-design loop tunes.
#pragma once

#include <string>
#include <vector>

#include "compiler/vectorization_model.h"
#include "miniapp/config.h"

namespace vecfd::miniapp {

/// Loop-nest shape of the phase-2 gather, selected by optimization level.
enum class Phase2Shape {
  kScalarOuterIvect,  ///< vanilla: runtime bound, ivect outer → scalar
  kDofInner,          ///< VEC2: constant bound, dof loop (trip 4) innermost
  kIvectInner,        ///< IVEC2: interchange, ivect (trip VS) innermost
};

struct PhasePlan {
  // phase 1
  bool p1_split = false;            ///< VEC1 fission applied?
  compiler::Decision p1_work_b;     ///< elcod gather loop

  // phase 2
  Phase2Shape p2_shape = Phase2Shape::kScalarOuterIvect;
  compiler::Decision p2;

  // phase 3
  compiler::Decision p3_jac, p3_inv, p3_car;
  // phase 4
  compiler::Decision p4_vel, p4_gve, p4_pre;
  // phase 5
  compiler::Decision p5_tau, p5_mass;
  // phase 6
  compiler::Decision p6_dw, p6_cab, p6_apply;
  // phase 7
  compiler::Decision p7_blk, p7_apply;
  // phase 8
  compiler::Decision p8;

  /// All (id, decision) pairs for reporting and tests.
  std::vector<std::pair<std::string, compiler::Decision>> all() const;
};

/// The LoopInfos describing the mini-app's source at a given optimization
/// level and VECTOR_SIZE (exposed separately so tests and the Table-4 bench
/// can inspect the compiler model's inputs).
std::vector<compiler::LoopInfo> loop_infos(const MiniAppConfig& cfg);

/// Run the vectorization model over the mini-app's loops.
PhasePlan build_plan(const sim::MachineConfig& machine,
                     const MiniAppConfig& cfg);

}  // namespace vecfd::miniapp
