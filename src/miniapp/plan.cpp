#include "miniapp/plan.h"

#include "fem/element.h"

namespace vecfd::miniapp {

using compiler::AccessPattern;
using compiler::LoopInfo;

namespace {

// ---- subkernel source descriptions ---------------------------------------
// Trip counts are the loop the vectorizer targets; for the SoA chunk loops
// that is the ivect dimension (trip = VECTOR_SIZE).  Stream counts encode
// body complexity and were chosen to reproduce the Table 4 pattern (see
// compiler::VectorizationModel::min_profitable_trip).

LoopInfo p1_fused(const MiniAppConfig& cfg) {
  return {.id = "phase1/gather-fused",
          .trip_count = cfg.vector_size,
          .bound_is_compile_time_constant = true,
          .pattern = AccessPattern::kIndexed,
          .memory_streams = 4,
          .fused_with_nonvectorizable = true};
}

LoopInfo p1_work_b(const MiniAppConfig& cfg) {
  return {.id = "phase1/gather-elcod",
          .trip_count = cfg.vector_size,
          .bound_is_compile_time_constant = true,
          .pattern = AccessPattern::kIndexed,
          .memory_streams = 4};
}

LoopInfo p2_loop(const MiniAppConfig& cfg) {
  switch (cfg.opt) {
    case OptLevel::kScalar:
    case OptLevel::kVanilla:
      // VECTOR_DIM is a dummy argument the compiler re-loads each
      // iteration: the bound is opaque (§4).
      return {.id = "phase2/gather-unknowns",
              .trip_count = cfg.vector_size,
              .bound_is_compile_time_constant = false,
              .pattern = AccessPattern::kIndexed,
              .memory_streams = 4};
    case OptLevel::kVec2:
      // constant bound; the innermost loop is the per-node dof copy
      return {.id = "phase2/gather-dofs",
              .trip_count = fem::kDofs,
              .bound_is_compile_time_constant = true,
              .pattern = AccessPattern::kContiguous,
              .memory_streams = 2};
    case OptLevel::kIVec2:
    case OptLevel::kVec1:
      // interchange: ivect innermost, gathers over the unknown vector
      return {.id = "phase2/gather-ivect",
              .trip_count = cfg.vector_size,
              .bound_is_compile_time_constant = true,
              .pattern = AccessPattern::kIndexed,
              .memory_streams = 4};
  }
  return {};
}

LoopInfo chunk_loop(const char* id, const MiniAppConfig& cfg, int streams) {
  return {.id = id,
          .trip_count = cfg.vector_size,
          .bound_is_compile_time_constant = true,
          .pattern = AccessPattern::kContiguous,
          .memory_streams = streams};
}

LoopInfo p8_loop(const MiniAppConfig& cfg) {
  return {.id = "phase8/global-scatter",
          .trip_count = cfg.vector_size,
          .bound_is_compile_time_constant = true,
          .pattern = AccessPattern::kIndexed,
          .memory_streams = 4,
          .may_alias_stores = true};
}

}  // namespace

std::vector<compiler::LoopInfo> loop_infos(const MiniAppConfig& cfg) {
  std::vector<LoopInfo> loops;
  if (cfg.opt == OptLevel::kVec1) {
    loops.push_back(p1_work_b(cfg));
  } else {
    loops.push_back(p1_fused(cfg));
  }
  loops.push_back(p2_loop(cfg));
  loops.push_back(chunk_loop("phase3/jacobian", cfg, 9));
  loops.push_back(chunk_loop("phase3/det-inverse", cfg, 4));
  loops.push_back(chunk_loop("phase3/cartesian-derivs", cfg, 9));
  loops.push_back(chunk_loop("phase4/gpvel", cfg, 10));
  loops.push_back(chunk_loop("phase4/gpgve", cfg, 10));
  loops.push_back(chunk_loop("phase4/gppre", cfg, 9));
  loops.push_back(chunk_loop("phase5/tau-rhs", cfg, 10));
  loops.push_back(chunk_loop("phase5/mass", cfg, 9));
  loops.push_back(chunk_loop("phase6/adv-test", cfg, 6));
  loops.push_back(chunk_loop("phase6/conv-block", cfg, 10));
  loops.push_back(chunk_loop("phase6/residual", cfg, 10));
  loops.push_back(chunk_loop("phase7/visc-block", cfg, 4));
  loops.push_back(chunk_loop("phase7/apply", cfg, 4));
  loops.push_back(p8_loop(cfg));
  return loops;
}

PhasePlan build_plan(const sim::MachineConfig& machine,
                     const MiniAppConfig& cfg) {
  const bool autovec = cfg.opt != OptLevel::kScalar;
  const compiler::VectorizationModel model(machine, autovec);

  PhasePlan plan;
  plan.p1_split = cfg.opt == OptLevel::kVec1;
  plan.p1_work_b =
      model.analyze(plan.p1_split ? p1_work_b(cfg) : p1_fused(cfg));

  switch (cfg.opt) {
    case OptLevel::kScalar:
    case OptLevel::kVanilla:
      plan.p2_shape = Phase2Shape::kScalarOuterIvect;
      break;
    case OptLevel::kVec2:
      plan.p2_shape = Phase2Shape::kDofInner;
      break;
    case OptLevel::kIVec2:
    case OptLevel::kVec1:
      plan.p2_shape = Phase2Shape::kIvectInner;
      break;
  }
  plan.p2 = model.analyze(p2_loop(cfg));

  plan.p3_jac = model.analyze(chunk_loop("phase3/jacobian", cfg, 9));
  plan.p3_inv = model.analyze(chunk_loop("phase3/det-inverse", cfg, 4));
  plan.p3_car = model.analyze(chunk_loop("phase3/cartesian-derivs", cfg, 9));
  plan.p4_vel = model.analyze(chunk_loop("phase4/gpvel", cfg, 10));
  plan.p4_gve = model.analyze(chunk_loop("phase4/gpgve", cfg, 10));
  plan.p4_pre = model.analyze(chunk_loop("phase4/gppre", cfg, 9));
  plan.p5_tau = model.analyze(chunk_loop("phase5/tau-rhs", cfg, 10));
  plan.p5_mass = model.analyze(chunk_loop("phase5/mass", cfg, 9));
  plan.p6_dw = model.analyze(chunk_loop("phase6/adv-test", cfg, 6));
  plan.p6_cab = model.analyze(chunk_loop("phase6/conv-block", cfg, 10));
  plan.p6_apply = model.analyze(chunk_loop("phase6/residual", cfg, 10));
  plan.p7_blk = model.analyze(chunk_loop("phase7/visc-block", cfg, 4));
  plan.p7_apply = model.analyze(chunk_loop("phase7/apply", cfg, 4));
  plan.p8 = model.analyze(p8_loop(cfg));
  return plan;
}

std::vector<std::pair<std::string, compiler::Decision>> PhasePlan::all()
    const {
  return {
      {"phase1/work-b", p1_work_b},
      {"phase2", p2},
      {"phase3/jacobian", p3_jac},
      {"phase3/det-inverse", p3_inv},
      {"phase3/cartesian-derivs", p3_car},
      {"phase4/gpvel", p4_vel},
      {"phase4/gpgve", p4_gve},
      {"phase4/gppre", p4_pre},
      {"phase5/tau-rhs", p5_tau},
      {"phase5/mass", p5_mass},
      {"phase6/adv-test", p6_dw},
      {"phase6/conv-block", p6_cab},
      {"phase6/residual", p6_apply},
      {"phase7/visc-block", p7_blk},
      {"phase7/apply", p7_apply},
      {"phase8", p8},
  };
}

}  // namespace vecfd::miniapp
