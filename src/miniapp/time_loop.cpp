#include "miniapp/time_loop.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>
#include <utility>

#include "fem/partition.h"
#include "fem/projection.h"
#include "miniapp/checkpoint.h"
#include "solver/vkernels.h"

namespace vecfd::miniapp {

namespace {

/// Deflation coarse space: lattice blocks of 2³ nodes.  Small blocks keep
/// the coarse space rich enough that the pressure iteration count levels
/// off under refinement (the property bench/precond_ladder gates on).
constexpr int kDeflationAggregateFactor = 2;

/// Turn row r of @p a into the identity row for every fixed node: the
/// Dirichlet value lands in the RHS and the solution exactly carries it.
/// Columns are left intact so interior rows keep their coupling to the
/// boundary values (correct for the nonsymmetric momentum operator).
void impose_dirichlet_rows(solver::CsrMatrix& a,
                           const std::vector<char>& fixed) {
  for (int r = 0; r < a.rows(); ++r) {
    if (!fixed[static_cast<std::size_t>(r)]) continue;
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      vals[k] = cols[k] == r ? 1.0 : 0.0;
    }
  }
}

/// zero-diag fault (sim/fault_injection.h): knock out the first diagonal
/// entry of the momentum operator AFTER the Dirichlet pass, so the Jacobi
/// setup of every component solve exits through its instrumented
/// SolveReport::failure path.
void inject_zero_diagonal(solver::CsrMatrix& a) {
  const auto cols = a.row_cols(0);
  const auto vals = a.row_vals(0);
  for (std::size_t k = 0; k < cols.size(); ++k) {
    if (cols[k] == 0) vals[k] = 0.0;
  }
}

MiniAppConfig make_app_config(const TimeLoopConfig& cfg) {
  MiniAppConfig app;
  app.vector_size = cfg.vector_size;
  app.scheme = fem::Scheme::kSemiImplicit;
  app.opt = cfg.opt;
  app.run_solve = false;  // the loop runs its own instrumented solves
  return app;
}

}  // namespace

TimeLoop::TimeLoop(const fem::Mesh& mesh, const Scenario& scenario,
                   TimeLoopConfig cfg)
    : mesh_(&mesh),
      scen_(scenario),
      cfg_(cfg),
      state_(mesh, scenario.physics),
      app_(mesh, state_, make_app_config(cfg)) {
  if (cfg_.steps <= 0) {
    throw std::invalid_argument("TimeLoop: steps must be positive");
  }
  if (cfg_.shards < 1) {
    throw std::invalid_argument("TimeLoop: shards must be positive");
  }
  if (!scen_.initial || !scen_.velocity_bc || !scen_.pressure_pins) {
    throw std::invalid_argument("TimeLoop: scenario is missing hooks");
  }

  // Scenario initial condition on both time levels.
  const int nn = mesh_->num_nodes();
  auto unk = state_.unknowns();
  auto old = state_.unknowns_old();
  for (int n = 0; n < nn; ++n) {
    const auto f = scen_.initial(*mesh_, n);
    for (int c = 0; c < fem::kDofs; ++c) {
      unk[static_cast<std::size_t>(n) * fem::kDofs + c] = f[c];
      old[static_cast<std::size_t>(n) * fem::kDofs + c] = f[c];
    }
  }

  // Constant operators: pinned SPD Laplacian, dtfac-mass, lumped mass.
  const fem::ShapeTable& shape = app_.shape();
  pressure_pins_ = scen_.pressure_pins(*mesh_);
  if (pressure_pins_.empty()) {
    throw std::invalid_argument(
        "TimeLoop: scenario pins no pressure node (the Neumann Poisson "
        "operator would be singular)");
  }
  poisson_ = fem::assemble_pressure_laplacian(*mesh_, shape);
  fem::pin_dirichlet(poisson_, pressure_pins_);
  dtmass_ = fem::assemble_dt_mass(*mesh_, state_.physics(), shape);
  lumped_inv_ = fem::assemble_lumped_mass(*mesh_, shape);
  for (double& m : lumped_inv_) m = 1.0 / m;

  if (cfg_.rcm_renumber) {
    // One RCM ordering serves both solves (momentum and pressure share the
    // node-adjacency pattern).  The pinned Laplacian has constant values,
    // so it is permuted once here; the momentum operator changes values
    // every step, so only its PATTERN twin and the nnz map are built now
    // and step code refreshes mom_perm_.vals() in place.
    rcm_perm_ = fem::rcm_ordering(mesh_->node_adjacency());
    poisson_ = solver::permute_symmetric(poisson_, rcm_perm_);
    const solver::CsrMatrix pattern(mesh_->node_adjacency());
    mom_perm_ = solver::permute_symmetric(pattern, rcm_perm_);
    mom_value_map_.resize(pattern.nnz());
    const auto rowptr = mom_perm_.rowptr();
    for (int q = 0; q < nn; ++q) {
      const auto cs = mom_perm_.row_cols(q);
      const int old_row = rcm_perm_[static_cast<std::size_t>(q)];
      for (std::size_t k = 0; k < cs.size(); ++k) {
        mom_value_map_[static_cast<std::size_t>(rowptr[q]) + k] =
            pattern.find(old_row,
                         rcm_perm_[static_cast<std::size_t>(cs[k])]);
      }
    }
  }

  // Pressure preconditioner ladder (DESIGN.md §8): the rung knob lands on
  // the phase-10 SolveOptions; kDeflate additionally needs the structured
  // coarse space, composed with the RCM permutation when the solve runs in
  // solve order (aggregate of solve row q = aggregate of node perm[q]).
  cfg_.pressure.precond.kind = cfg_.precond;
  if (cfg_.precond == solver::PrecondKind::kDeflate) {
    std::vector<int> agg =
        fem::structured_aggregates(*mesh_, kDeflationAggregateFactor);
    if (cfg_.rcm_renumber) {
      std::vector<int> agg_solve(agg.size());
      for (int q = 0; q < nn; ++q) {
        agg_solve[static_cast<std::size_t>(q)] =
            agg[static_cast<std::size_t>(
                rcm_perm_[static_cast<std::size_t>(q)])];
      }
      agg.swap(agg_solve);
    }
    cfg_.pressure.precond.aggregates = std::move(agg);
  }
}

void TimeLoop::apply_velocity_bc(std::vector<double>& vel, double t) const {
  const int nn = mesh_->num_nodes();
  std::array<double, fem::kDim> val;
  for (int n = 0; n < nn; ++n) {
    if (!scen_.velocity_bc(*mesh_, n, t, val)) continue;
    for (int d = 0; d < fem::kDim; ++d) {
      vel[static_cast<std::size_t>(n) * fem::kDim +
          static_cast<std::size_t>(d)] = val[d];
    }
  }
}

std::unique_ptr<solver::ShardedCg> TimeLoop::make_sharded(const sim::Vpu& vpu,
                                                          int slice) const {
  // Sharding serves the kJacobi rung on vector machines (DESIGN.md §9);
  // every other combination runs the legacy single-Vpu path, which is the
  // bit-identical reference anyway.
  if (cfg_.shards <= 1 || !vpu.config().vector_enabled) return nullptr;
  if (cfg_.precond != solver::PrecondKind::kJacobi ||
      !cfg_.pressure.jacobi_precondition) {
    return nullptr;
  }
  try {
    fem::MeshPartition part = fem::partition_mesh(
        *mesh_, cfg_.shards, slice,
        cfg_.rcm_renumber ? std::span<const int>(rcm_perm_)
                          : std::span<const int>{});
    return std::make_unique<solver::ShardedCg>(
        std::move(part.plan), poisson_, vpu.config(), cfg_.vector_size,
        kPressurePhase, vpu.profiler().num_phases());
  } catch (const std::runtime_error&) {
    // Zero operator diagonal: fall back so the legacy path reports the
    // failure through its instrumented SolveReport exit, bit for bit.
    return nullptr;
  }
}

void TimeLoop::set_checkpoint_sink(
    std::uint64_t config_hash,
    std::function<void(const TimeLoopCheckpoint&)> sink) {
  ckpt_hash_ = config_hash;
  ckpt_sink_ = std::move(sink);
}

void TimeLoop::restore(const TimeLoopCheckpoint& checkpoint,
                       std::uint64_t expected_hash) {
  if (checkpoint.config_hash != expected_hash) {
    throw std::runtime_error(
        "TimeLoop::restore: checkpoint config hash mismatch (written under "
        "a different scenario/config/machine — resuming would break the "
        "bit-identity contract)");
  }
  if (checkpoint.next_step < 0 ||
      checkpoint.next_step > static_cast<std::int64_t>(cfg_.steps)) {
    throw std::runtime_error(
        "TimeLoop::restore: checkpoint step cursor out of range");
  }
  if (checkpoint.unknowns.size() != state_.unknowns().size() ||
      checkpoint.unknowns_old.size() != state_.unknowns_old().size()) {
    throw std::runtime_error(
        "TimeLoop::restore: field size mismatch (different mesh?)");
  }
  if (checkpoint.step_reports.size() !=
      static_cast<std::size_t>(checkpoint.next_step)) {
    throw std::runtime_error(
        "TimeLoop::restore: step report count disagrees with the cursor");
  }
  if (checkpoint.phase_counters.size() !=
      static_cast<std::size_t>(kNumInstrumentedPhases) + 1) {
    throw std::runtime_error(
        "TimeLoop::restore: per-phase counter count mismatch");
  }

  std::copy(checkpoint.unknowns.begin(), checkpoint.unknowns.end(),
            state_.unknowns().begin());
  std::copy(checkpoint.unknowns_old.begin(), checkpoint.unknowns_old.end(),
            state_.unknowns_old().begin());
  time_ = checkpoint.time;
  start_step_ = static_cast<int>(checkpoint.next_step);
  carried_steps_ = checkpoint.step_reports;
  carried_total_ = checkpoint.total_counters;
  carried_phase_ = checkpoint.phase_counters;
  carried_makespan_ = checkpoint.pressure_makespan_cycles;
  carried_converged_ = checkpoint.all_converged;
}

double TimeLoop::divergence_norm(const std::vector<double>& div) const {
  double s = 0.0;
  for (std::size_t a = 0; a < div.size(); ++a) {
    s += div[a] * div[a] * lumped_inv_[a];
  }
  return std::sqrt(s);
}

TimeLoopResult TimeLoop::run(sim::Vpu& vpu) {
  vpu.reset();
  const fem::Physics& phys = state_.physics();
  const fem::ShapeTable& shape = app_.shape();
  const int nn = mesh_->num_nodes();
  const std::size_t un = static_cast<std::size_t>(nn);
  const int vs = cfg_.vector_size;
  const double rho_dt = phys.density / phys.dt;

  // Operator mirrors in the configured storage format; SELL slices at the
  // strip the solve kernels actually run (solver::solve_effective_strip).
  const int slice_c = solver::solve_effective_strip(vs, vpu.config());
  solver::OperatorMirror dtmass_op;
  dtmass_op.assign(dtmass_, cfg_.format, slice_c);

  // Sharded pressure context (DESIGN.md §9): built fresh per run so the
  // shard Vpus' memory hierarchies start from a deterministic first-touch
  // state, null when the configuration falls back to the legacy path.
  const std::unique_ptr<solver::ShardedCg> sharded = make_sharded(vpu, slice_c);
  const auto shard_cycles = [&sharded]() {
    double c = 0.0;
    if (sharded) {
      for (int p = 0; p < sharded->shards(); ++p) {
        c += sharded->shard_vpu(p).counters().total_cycles();
      }
    }
    return c;
  };

  // Consume the restore() carry-over.  All of it is empty/zero unless
  // restore() seeded it, so the default path aggregates exactly as before
  // (bit-for-bit: golden CSVs and BENCH baselines are unchanged).
  // Mutable: the epoch folds below grow the base at every flush boundary.
  const int first_step = std::exchange(start_step_, 0);
  sim::Counters carried_total = std::exchange(carried_total_, {});
  std::vector<sim::Counters> carried_phase = std::move(carried_phase_);
  carried_phase_.clear();
  double carried_makespan = std::exchange(carried_makespan_, 0.0);

  TimeLoopResult res;
  res.steps = std::move(carried_steps_);
  carried_steps_.clear();
  res.steps.reserve(static_cast<std::size_t>(cfg_.steps));
  res.all_converged = std::exchange(carried_converged_, true);

  // Everything the Vpu touches is allocated once, before the first step,
  // and reused in place: the deterministic memory model renames host lines
  // in first-touch order, so mid-measurement free/realloc churn of touched
  // buffers would couple cache behaviour to allocator history (see
  // mem/memory_hierarchy.h).  The Krylov workspaces extend the same
  // guarantee into the solvers.
  std::vector<double> vel_now(un * fem::kDim);
  // Node-major component blocks (column d spans [d·nn, (d+1)·nn)): the
  // layout the blocked phase-9/11 kernels stream; the per-component path
  // works on the same columns through single-RHS kernels.
  std::vector<double> u_blk(un * fem::kDim), b_blk(un * fem::kDim);
  std::vector<double> tmp_blk(un * fem::kDim), ustar_blk(un * fem::kDim);
  const auto col = [un](std::vector<double>& blk, int d) {
    return std::span<double>(blk).subspan(static_cast<std::size_t>(d) * un,
                                          un);
  };
  const auto ccol = [un](const std::vector<double>& blk, int d) {
    return std::span<const double>(blk).subspan(
        static_cast<std::size_t>(d) * un, un);
  };
  std::array<double, fem::kDim> ones;
  ones.fill(1.0);
  std::array<double, fem::kDim> minus_ones;
  minus_ones.fill(-1.0);
  std::array<double, fem::kDim> corr_scale;
  corr_scale.fill(-1.0 / rho_dt);
  std::vector<double> phi(un), b_p(un);
  std::vector<double> div, grad;
  MiniAppResult ar;
  ElementChunk ch(cfg_.vector_size, /*with_matrix=*/true);
  solver::CsrMatrix k_bc;
  solver::OperatorMirror k_op;
  solver::KrylovWorkspace momentum_ws, pressure_ws;
  std::vector<char> fixed(un, 0);
  std::vector<std::array<double, fem::kDim>> bc(un);

  // RCM solve-space marshalling (host-side, uncounted — the operator-setup
  // policy of solver/vkernels.h): the solvers see permuted systems through
  // these buffers, which are Vpu-touched inside the solves and therefore
  // hoisted like every other measured buffer.
  std::vector<double> bp_blk, xp_blk, bp_p, phi_p;
  if (cfg_.rcm_renumber) {
    bp_blk.assign(un * fem::kDim, 0.0);
    xp_blk.assign(un * fem::kDim, 0.0);
    bp_p.assign(un, 0.0);
    phi_p.assign(un, 0.0);
  }
  const auto to_solve_order = [&](std::span<const double> src,
                                  std::span<double> dst) {
    for (int q = 0; q < nn; ++q) {
      dst[static_cast<std::size_t>(q)] =
          src[static_cast<std::size_t>(rcm_perm_[static_cast<std::size_t>(q)])];
    }
  };
  const auto from_solve_order = [&](std::span<const double> src,
                                    std::span<double> dst) {
    for (int q = 0; q < nn; ++q) {
      dst[static_cast<std::size_t>(rcm_perm_[static_cast<std::size_t>(q)])] =
          src[static_cast<std::size_t>(q)];
    }
  };
  // Refresh P·K·Pᵀ values in place from the freshly assembled (and
  // Dirichlet-imposed) K — pattern and buffers stay fixed across steps.
  const auto refresh_mom_perm = [&](const solver::CsrMatrix& src) {
    const auto sv = src.vals();
    const auto pv = mom_perm_.vals();
    for (std::size_t i = 0; i < mom_value_map_.size(); ++i) {
      pv[i] = sv[static_cast<std::size_t>(mom_value_map_[i])];
    }
  };

  for (int step = first_step; step < cfg_.steps; ++step) {
    const double cycles0 = vpu.counters().total_cycles();
    const double shard_cycles0 = shard_cycles();
    const double t_next = time_ + phys.dt;
    StepReport rep;
    rep.time = t_next;

    // Sync time levels: old ← current, so the assembled residual is the
    // Picard residual at uⁿ and b = rhs + (K − Mdt)·uⁿ is exactly the
    // backward-Euler RHS Mdt·uⁿ + F + Ĝᵀpⁿ (see header).
    for (int n = 0; n < nn; ++n) {
      for (int d = 0; d < fem::kDim; ++d) {
        vel_now[static_cast<std::size_t>(n) * fem::kDim +
                static_cast<std::size_t>(d)] = state_.velocity(n, d);
      }
    }
    state_.push_time_level(vel_now);

    // ---- phases 1–8: semi-implicit assembly of K and the residual rhs --
    app_.assemble_into(vpu, ar, ch);

    // Scenario Dirichlet data at the solution time t^{n+1}.
    std::fill(fixed.begin(), fixed.end(), 0);
    for (int n = 0; n < nn; ++n) {
      std::array<double, fem::kDim> val;
      if (scen_.velocity_bc(*mesh_, n, t_next, val)) {
        fixed[static_cast<std::size_t>(n)] = 1;
        bc[static_cast<std::size_t>(n)] = val;
      }
    }
    k_bc = ar.matrix;
    impose_dirichlet_rows(k_bc, fixed);
    if (cfg_.fault.fires(sim::FaultKind::kZeroDiagonal, step)) {
      inject_zero_diagonal(k_bc);
    }
    k_op.assign(ar.matrix, cfg_.format, slice_c);

    // ---- phase 9: blocked multi-RHS momentum BiCGStab ------------------
    // The kDim component systems share the operator K, so the RHS block is
    // formed and solved with the multi-RHS kernels (one value/index slab
    // load per strip feeding kDim gather streams); blocked_momentum = false
    // runs the sequential 9a–9c reference on the same column buffers —
    // bit-identical per component (DESIGN.md §5).
    {
      sim::ScopedPhase scope(vpu.profiler(), kSolvePhase);
      for (int d = 0; d < fem::kDim; ++d) {
        solver::vpack_strided(vpu, state_.unknowns_data() + d, fem::kDofs,
                              col(u_blk, d), vs);
        solver::vpack_strided(vpu, ar.rhs.data() + d, fem::kDim,
                              col(b_blk, d), vs);
      }
      if (cfg_.blocked_momentum) {
        k_op.apply_multi(vpu, u_blk, tmp_blk, fem::kDim, vs);
        solver::vaxpy_multi(vpu, ones, tmp_blk, b_blk, fem::kDim, vs);
        dtmass_op.apply_multi(vpu, u_blk, tmp_blk, fem::kDim, vs);
        solver::vaxpy_multi(vpu, minus_ones, tmp_blk, b_blk, fem::kDim, vs);
        for (int n = 0; n < nn; ++n) {  // Dirichlet rows per component (host)
          if (!fixed[static_cast<std::size_t>(n)]) continue;
          for (int d = 0; d < fem::kDim; ++d) {
            b_blk[static_cast<std::size_t>(d) * un +
                  static_cast<std::size_t>(n)] =
                bc[static_cast<std::size_t>(n)][static_cast<std::size_t>(d)];
          }
        }
        solver::vcopy_multi(vpu, u_blk, ustar_blk, fem::kDim, vs);
        std::vector<solver::SolveReport> mreps;
        if (cfg_.rcm_renumber) {
          refresh_mom_perm(k_bc);
          for (int d = 0; d < fem::kDim; ++d) {
            to_solve_order(ccol(b_blk, d), col(bp_blk, d));
            to_solve_order(ccol(ustar_blk, d), col(xp_blk, d));
          }
          mreps = solver::vbicgstab_multi(vpu, mom_perm_, bp_blk, xp_blk,
                                          fem::kDim, cfg_.momentum, vs,
                                          &momentum_ws, cfg_.format);
          for (int d = 0; d < fem::kDim; ++d) {
            from_solve_order(ccol(xp_blk, d), col(ustar_blk, d));
          }
        } else {
          mreps = solver::vbicgstab_multi(vpu, k_bc, b_blk, ustar_blk,
                                          fem::kDim, cfg_.momentum, vs,
                                          &momentum_ws, cfg_.format);
        }
        for (int d = 0; d < fem::kDim; ++d) {
          rep.momentum[static_cast<std::size_t>(d)] =
              std::move(mreps[static_cast<std::size_t>(d)]);
          res.all_converged &=
              rep.momentum[static_cast<std::size_t>(d)].converged;
        }
      } else {
        if (cfg_.rcm_renumber) refresh_mom_perm(k_bc);
        for (int d = 0; d < fem::kDim; ++d) {
          k_op.apply(vpu, ccol(u_blk, d), col(tmp_blk, d), vs);
          solver::vaxpy(vpu, 1.0, ccol(tmp_blk, d), col(b_blk, d), vs);
          dtmass_op.apply(vpu, ccol(u_blk, d), col(tmp_blk, d), vs);
          solver::vaxpy(vpu, -1.0, ccol(tmp_blk, d), col(b_blk, d), vs);
          for (int n = 0; n < nn; ++n) {  // Dirichlet rows (host)
            if (fixed[static_cast<std::size_t>(n)]) {
              b_blk[static_cast<std::size_t>(d) * un +
                    static_cast<std::size_t>(n)] =
                  bc[static_cast<std::size_t>(n)]
                    [static_cast<std::size_t>(d)];
            }
          }
          solver::vcopy(vpu, ccol(u_blk, d), col(ustar_blk, d), vs);
          if (cfg_.rcm_renumber) {
            to_solve_order(ccol(b_blk, d), col(bp_blk, d));
            to_solve_order(ccol(ustar_blk, d), col(xp_blk, d));
            rep.momentum[static_cast<std::size_t>(d)] = solver::vbicgstab(
                vpu, mom_perm_, ccol(bp_blk, d), col(xp_blk, d),
                cfg_.momentum, vs, &momentum_ws, cfg_.format);
            from_solve_order(ccol(xp_blk, d), col(ustar_blk, d));
          } else {
            rep.momentum[static_cast<std::size_t>(d)] = solver::vbicgstab(
                vpu, k_bc, ccol(b_blk, d), col(ustar_blk, d), cfg_.momentum,
                vs, &momentum_ws, cfg_.format);
          }
          res.all_converged &=
              rep.momentum[static_cast<std::size_t>(d)].converged;
        }
      }
    }

    // ---- phase 10: pressure-Poisson CG ----------------------------------
    for (int n = 0; n < nn; ++n) {
      for (int d = 0; d < fem::kDim; ++d) {
        vel_now[static_cast<std::size_t>(n) * fem::kDim +
                static_cast<std::size_t>(d)] =
            ustar_blk[static_cast<std::size_t>(d) * un +
                      static_cast<std::size_t>(n)];
      }
    }
    fem::assemble_weak_divergence_into(*mesh_, shape, vel_now, div);
    if (cfg_.fault.fires(sim::FaultKind::kNanRhs, step)) {
      // nan-rhs fault: poison the host-assembled divergence, so NaN must
      // travel the full b_p → solve → correction → diagnostics pipeline.
      std::fill(div.begin(), div.end(),
                std::numeric_limits<double>::quiet_NaN());
    }
    rep.div_before = divergence_norm(div);
    {
      sim::ScopedPhase scope(vpu.profiler(), kPressurePhase);
      // breakdown fault: a copy of the pressure options with the injection
      // armed, routed through the legacy vcg — its instrumented failure
      // exit is the one the sharded path falls back to anyway.
      const bool inject_breakdown =
          cfg_.fault.fires(sim::FaultKind::kSolverBreakdown, step);
      solver::SolveOptions popts_injected;
      if (inject_breakdown) {
        popts_injected = cfg_.pressure;
        popts_injected.inject_breakdown = true;
      }
      const solver::SolveOptions& popts =
          inject_breakdown ? popts_injected : cfg_.pressure;
      const bool use_sharded = sharded != nullptr && !inject_breakdown;
      solver::vfill(vpu, b_p, 0.0, vs);
      solver::vaxpy(vpu, -rho_dt, div, b_p, vs);  // b = −(ρ/Δt)·D u*
      for (int r : pressure_pins_) b_p[static_cast<std::size_t>(r)] = 0.0;
      std::fill(phi.begin(), phi.end(), 0.0);
      if (cfg_.rcm_renumber) {
        // poisson_ was permuted once at construction; marshal b/φ around it
        to_solve_order(b_p, bp_p);
        std::fill(phi_p.begin(), phi_p.end(), 0.0);
        rep.pressure =
            use_sharded ? sharded->solve(vpu, bp_p, phi_p, popts)
                        : solver::vcg(vpu, poisson_, bp_p, phi_p, popts,
                                      vs, &pressure_ws, cfg_.format);
        from_solve_order(phi_p, phi);
      } else {
        rep.pressure =
            use_sharded ? sharded->solve(vpu, b_p, phi, popts)
                        : solver::vcg(vpu, poisson_, b_p, phi, popts, vs,
                                      &pressure_ws, cfg_.format);
      }
      res.all_converged &= rep.pressure.converged;
    }

    // ---- phase 11: BLAS-1 velocity correction ---------------------------
    fem::assemble_weak_gradient_into(*mesh_, shape, phi, grad);
    {
      sim::ScopedPhase scope(vpu.profiler(), kCorrectionPhase);
      for (int d = 0; d < fem::kDim; ++d) {
        solver::vpack_strided(vpu, grad.data() + d, fem::kDim,
                              col(b_blk, d), vs);
      }
      if (cfg_.blocked_momentum) {
        // M_L⁻¹ Ĝφ for all components, one fused pass per kernel
        solver::vjacobi_apply_multi(vpu, lumped_inv_, b_blk, tmp_blk,
                                    fem::kDim, vs);
        solver::vaxpy_multi(vpu, corr_scale, tmp_blk, ustar_blk, fem::kDim,
                            vs);
      } else {
        for (int d = 0; d < fem::kDim; ++d) {
          solver::vjacobi_apply(vpu, lumped_inv_, ccol(b_blk, d),
                                col(tmp_blk, d), vs);  // M_L⁻¹ Ĝφ
          solver::vaxpy(vpu, -1.0 / rho_dt, ccol(tmp_blk, d),
                        col(ustar_blk, d), vs);
        }
      }
    }

    // Write uⁿ⁺¹ (with Dirichlet data re-imposed) and pⁿ⁺¹ = pⁿ + φ back
    // into the state; measure the projected divergence.
    for (int n = 0; n < nn; ++n) {
      for (int d = 0; d < fem::kDim; ++d) {
        vel_now[static_cast<std::size_t>(n) * fem::kDim +
                static_cast<std::size_t>(d)] =
            ustar_blk[static_cast<std::size_t>(d) * un +
                      static_cast<std::size_t>(n)];
      }
    }
    apply_velocity_bc(vel_now, t_next);
    fem::assemble_weak_divergence_into(*mesh_, shape, vel_now, div);
    rep.div_after = divergence_norm(div);

    auto unk = state_.unknowns();
    for (int n = 0; n < nn; ++n) {
      for (int d = 0; d < fem::kDim; ++d) {
        unk[static_cast<std::size_t>(n) * fem::kDofs +
            static_cast<std::size_t>(d)] =
            vel_now[static_cast<std::size_t>(n) * fem::kDim +
                    static_cast<std::size_t>(d)];
      }
      unk[static_cast<std::size_t>(n) * fem::kDofs + fem::kDim] +=
          phi[static_cast<std::size_t>(n)];
    }

    time_ = t_next;
    rep.cycles = vpu.counters().total_cycles() - cycles0 + shard_cycles() -
                 shard_cycles0;
    res.steps.push_back(std::move(rep));

    // Epoch boundary of the checkpoint/restart protocol (DESIGN.md §10):
    // capture the accumulated state for the sink, then drain the machine —
    // every hierarchy flushed, canonical first-touch map forgotten — so
    // the next epoch starts exactly like a restarted process would.  The
    // final boundary (done == steps) captures without flushing, so a
    // completed point replays identically under --resume.
    const int done = step + 1;
    if (cfg_.checkpoint_every > 0 &&
        (done % cfg_.checkpoint_every == 0 || done == cfg_.steps)) {
      if (ckpt_sink_) {
        TimeLoopCheckpoint c;
        c.config_hash = ckpt_hash_;
        c.next_step = done;
        c.time = time_;
        c.unknowns.assign(state_.unknowns().begin(),
                          state_.unknowns().end());
        c.unknowns_old.assign(state_.unknowns_old().begin(),
                              state_.unknowns_old().end());
        c.step_reports = res.steps;
        c.total_counters = carried_total;
        c.total_counters += vpu.counters();
        c.phase_counters.resize(
            static_cast<std::size_t>(kNumInstrumentedPhases) + 1);
        for (int p = 0; p <= kNumInstrumentedPhases; ++p) {
          c.phase_counters[static_cast<std::size_t>(p)] =
              vpu.profiler().phase(p);
          if (static_cast<std::size_t>(p) < carried_phase.size()) {
            c.phase_counters[static_cast<std::size_t>(p)] +=
                carried_phase[static_cast<std::size_t>(p)];
          }
        }
        if (sharded) {
          for (int s = 0; s < sharded->shards(); ++s) {
            const sim::Vpu& sv = sharded->shard_vpu(s);
            c.total_counters += sv.counters();
            for (int p = 0; p <= kNumInstrumentedPhases; ++p) {
              c.phase_counters[static_cast<std::size_t>(p)] +=
                  sv.profiler().phase(p);
            }
          }
        }
        c.all_converged = res.all_converged;
        c.pressure_makespan_cycles =
            sharded ? carried_makespan + sharded->makespan_cycles()
                    : c.phase_counters[kPressurePhase].total_cycles();
        ckpt_sink_(c);
      }
      if (done < cfg_.steps && done % cfg_.checkpoint_every == 0) {
        // Drain the machine INTO the carried base — same aggregation order
        // as the final totals (coordinator, then shards) — then reset it
        // outright.  Folding whole-epoch subtotals instead of letting one
        // accumulator run across epochs keeps the double-typed cycle
        // counters associating identically in the uninterrupted and the
        // resumed run, so the restart is bit-identical down to the last
        // ulp; the reset leaves caches cold and the first-touch map
        // forgotten, exactly like the restarted process the next epoch
        // must be indistinguishable from.
        carried_phase.resize(static_cast<std::size_t>(kNumInstrumentedPhases) +
                             1);
        carried_total += vpu.counters();
        for (int p = 0; p <= kNumInstrumentedPhases; ++p) {
          carried_phase[static_cast<std::size_t>(p)] +=
              vpu.profiler().phase(p);
        }
        if (sharded) {
          for (int s = 0; s < sharded->shards(); ++s) {
            const sim::Vpu& sv = sharded->shard_vpu(s);
            carried_total += sv.counters();
            for (int p = 0; p <= kNumInstrumentedPhases; ++p) {
              carried_phase[static_cast<std::size_t>(p)] +=
                  sv.profiler().phase(p);
            }
          }
          carried_makespan += sharded->makespan_cycles();
          sharded->reset();
        }
        vpu.reset();
      }
    }
  }

  // Whole-run totals aggregate ALL Vpus — the coordinator plus every shard
  // — so the conservation invariants (Σ step cycles == run cycles, Σ phase
  // counters == totals) hold regardless of the shard count.  A resumed run
  // seeds the totals with the carried pre-restart counters; a fresh run
  // carries zeros, so the default path is unchanged.
  res.total = carried_total;
  res.total += vpu.counters();
  res.phase.resize(kNumInstrumentedPhases + 1);
  for (int p = 0; p <= kNumInstrumentedPhases; ++p) {
    res.phase[p] = vpu.profiler().phase(p);
    if (static_cast<std::size_t>(p) < carried_phase.size()) {
      res.phase[p] += carried_phase[static_cast<std::size_t>(p)];
    }
  }
  if (sharded) {
    for (int s = 0; s < sharded->shards(); ++s) {
      const sim::Vpu& sv = sharded->shard_vpu(s);
      res.total += sv.counters();
      for (int p = 0; p <= kNumInstrumentedPhases; ++p) {
        res.phase[p] += sv.profiler().phase(p);
      }
    }
  }
  res.cycles = res.total.total_cycles();
  res.pressure_makespan_cycles =
      sharded ? carried_makespan + sharded->makespan_cycles()
              : res.phase[kPressurePhase].total_cycles();
  return res;
}

}  // namespace vecfd::miniapp
