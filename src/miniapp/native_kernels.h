// vecfd::miniapp::native — host-compiled versions of the loop-order
// experiments, for running on real hardware (e.g. an AVX-512 desktop) with
// google-benchmark.  These are the same source transformations the paper
// applies (vanilla / bound-const / interchange / fission), written so the
// *host* compiler's auto-vectorizer faces the same decisions the EPI
// compiler faced — the portability half of the evaluation (Figures 12/13).
#pragma once

#include <cstdint>

namespace vecfd::miniapp::native {

/// Phase-2 gather, vanilla shape: element loop outermost and the loop bound
/// re-read through a pointer every iteration (defeats vectorization, like
/// the Fortran dummy argument in §4).
/// Arrays: lnods [kNodes][vs], unk/unk_old [node][4],
/// elunk [4][kNodes][vs], elvel_old [3][kNodes][vs].
void phase2_vanilla(const std::int32_t* lnods, const double* unk,
                    const double* unk_old, double* elunk, double* elvel_old,
                    const int* bound);

/// Phase-2 gather, VEC2 shape: constant bound, per-node dof loop innermost
/// (the compiler can vectorize only a trip-4 loop).
void phase2_dof_inner(const std::int32_t* lnods, const double* unk,
                      const double* unk_old, double* elunk,
                      double* elvel_old, int vs);

/// Phase-2 gather, IVEC2 shape: interchange puts the long element dimension
/// innermost — unit-stride stores, gathers the vectorizer can handle.
void phase2_ivect_inner(const std::int32_t* lnods, const double* unk,
                        const double* unk_old, double* elunk,
                        double* elvel_old, int vs);

/// Phase-1 gather, fused shape (work A bookkeeping + work B coordinate
/// gather in one loop) vs the VEC1 fissioned shape.
/// coords [node][3], elcod [3][kNodes][vs], dtfac [vs].
void phase1_fused(const std::int32_t* mesh_lnods, const std::int32_t* elmat,
                  const double* coords, std::int32_t* lnods, double* dtfac,
                  double* elcod, int first, int vs, double base_dt);
void phase1_split(const std::int32_t* mesh_lnods, const std::int32_t* elmat,
                  const double* coords, std::int32_t* lnods, double* dtfac,
                  double* elcod, int first, int vs, double base_dt);

/// Phase-6-style convection block on the SoA chunk layout — the
/// FMA-dominated kernel, for host roofline context.
/// wmat/dmat [kGauss][kNodes][vs], conv [kNodes][kNodes][vs].
void conv_block(const double* wmat, const double* dmat, double* conv,
                int vs);

/// Checksum helper so benchmarks keep results observable.
double checksum(const double* p, std::size_t n);

}  // namespace vecfd::miniapp::native
