// vecfd::miniapp — the eight instrumented phases of the assembly mini-app.
//
// Each phase mirrors its description in §2.3 of the paper and is written
// against the sim::Vpu instruction API in (up to) two forms per subkernel:
// a scalar path and a vector path.  Which path runs is decided by the
// PhasePlan (the modelled compiler), so a single source of truth covers the
// scalar baseline, the vanilla auto-vectorized build and the VEC2 / IVEC2 /
// VEC1 source transformations.  All paths compute identical values, which
// the test suite checks against fem::assemble_element.
#pragma once

#include <vector>

#include "fem/mesh.h"
#include "fem/scheme.h"
#include "fem/shape.h"
#include "fem/state.h"
#include "miniapp/chunk.h"
#include "miniapp/config.h"
#include "miniapp/plan.h"
#include "sim/vpu.h"
#include "solver/csr.h"

namespace vecfd::miniapp {

/// Everything a phase kernel needs besides the chunk workspace.
struct Ctx {
  const fem::Mesh* mesh = nullptr;
  const fem::State* state = nullptr;
  const fem::ShapeTable* shape = nullptr;
  const PhasePlan* plan = nullptr;
  MiniAppConfig cfg;

  /// Memory slot standing in for the VECTOR_DIM dummy argument that the
  /// vanilla phase 2 re-loads every iteration (§4).
  const double* vector_dim_slot = nullptr;

  /// Global assembly targets (phase 8).
  std::vector<double>* global_rhs = nullptr;   ///< [node·kDim]
  solver::CsrMatrix* global_matrix = nullptr;  ///< null for explicit scheme
};

void phase1(sim::Vpu& vpu, const Ctx& ctx, ElementChunk& ch);
void phase2(sim::Vpu& vpu, const Ctx& ctx, ElementChunk& ch);
void phase3(sim::Vpu& vpu, const Ctx& ctx, ElementChunk& ch);
void phase4(sim::Vpu& vpu, const Ctx& ctx, ElementChunk& ch);
void phase5(sim::Vpu& vpu, const Ctx& ctx, ElementChunk& ch);
void phase6(sim::Vpu& vpu, const Ctx& ctx, ElementChunk& ch);
void phase7(sim::Vpu& vpu, const Ctx& ctx, ElementChunk& ch);
void phase8(sim::Vpu& vpu, const Ctx& ctx, ElementChunk& ch);

namespace detail {

/// Uniform group traversal: vector subkernels strip-mine in groups of
/// min(vs, vlmax); scalar subkernels iterate the same groups element-wise,
/// so partially vectorized phases interleave exactly like strip-mined code.
inline int group_size(const sim::Vpu& vpu, const ElementChunk& ch) {
  if (!vpu.config().vector_enabled) return ch.vs();
  return ch.vs() < vpu.vlmax() ? ch.vs() : vpu.vlmax();
}

}  // namespace detail

}  // namespace vecfd::miniapp
