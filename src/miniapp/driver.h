// vecfd::miniapp — mini-app driver: runs the 8 phases over all
// VECTOR_SIZE chunks of a mesh on a simulated machine and returns both the
// numerical result (global RHS / matrix) and the per-phase hardware
// counters the paper's analysis is built on.
#pragma once

#include <vector>

#include "fem/mesh.h"
#include "fem/reference_assembly.h"
#include "fem/shape.h"
#include "fem/state.h"
#include "miniapp/config.h"
#include "miniapp/plan.h"
#include "sim/vpu.h"
#include "solver/csr.h"
#include "solver/krylov.h"

namespace vecfd::miniapp {

struct MiniAppResult {
  // ---- numerical output ---------------------------------------------------
  std::vector<double> rhs;     ///< assembled global RHS, [node·kDim]
  solver::CsrMatrix matrix;    ///< assembled momentum operator
  bool has_matrix = false;     ///< true under the semi-implicit scheme

  /// Phase-9 solve output (config.run_solve): the x-momentum solution and
  /// the Krylov convergence report.
  std::vector<double> solution;
  solver::SolveReport solve;
  bool has_solve = false;

  // ---- measurement -------------------------------------------------------
  sim::Counters total;                 ///< whole-run counters
  std::vector<sim::Counters> phase;    ///< index 1..9 (0 = outside phases)
  double cycles = 0.0;                 ///< convenience: total cycles
};

/// The eight instrumented phases of one assembly pass (§2.3).
inline constexpr int kNumPhases = 8;

/// Phase id of the chained Krylov solve (config.run_solve).
inline constexpr int kSolvePhase = 9;

/// Phases carried by every MiniAppResult / Measurement / CSV row: the eight
/// assembly phases plus the solve.  This is the single source of truth the
/// CSV header and row writers derive their column count from.
inline constexpr int kNumInstrumentedPhases = kSolvePhase;
static_assert(kNumInstrumentedPhases <= sim::kDefaultNumPhases,
              "default Vpu profiler must cover every instrumented phase");

class MiniApp {
 public:
  /// The mesh and state must outlive the MiniApp.
  MiniApp(const fem::Mesh& mesh, const fem::State& state, MiniAppConfig cfg);

  const MiniAppConfig& config() const { return cfg_; }
  const fem::ShapeTable& shape() const { return shape_; }

  /// The modelled compiler's decisions for this configuration on @p machine.
  PhasePlan plan(const sim::MachineConfig& machine) const {
    return build_plan(machine, cfg_);
  }

  /// Execute the full assembly on @p vpu.  Resets the machine (counters,
  /// phases, caches) first so results are independent measurements.
  ///
  /// Thread safety: run() only reads the shared Mesh/State/ShapeTable and
  /// writes through @p vpu and the returned result, so concurrent calls on
  /// the same MiniApp (or on distinct MiniApps over one mesh) are safe as
  /// long as each caller owns its Vpu.  core::Experiment::run_points builds
  /// its sweep fan-out on this guarantee.
  MiniAppResult run(sim::Vpu& vpu) const;

 private:
  const fem::Mesh* mesh_;
  const fem::State* state_;
  fem::ShapeTable shape_;
  MiniAppConfig cfg_;
};

}  // namespace vecfd::miniapp
