// vecfd::miniapp — mini-app driver: runs the 8 phases over all
// VECTOR_SIZE chunks of a mesh on a simulated machine and returns both the
// numerical result (global RHS / matrix) and the per-phase hardware
// counters the paper's analysis is built on.
#pragma once

#include <vector>

#include "fem/mesh.h"
#include "fem/reference_assembly.h"
#include "fem/shape.h"
#include "fem/state.h"
#include "miniapp/chunk.h"
#include "miniapp/config.h"
#include "miniapp/plan.h"
#include "sim/vpu.h"
#include "solver/csr.h"
#include "solver/krylov.h"

namespace vecfd::miniapp {

struct MiniAppResult {
  // ---- numerical output ---------------------------------------------------
  std::vector<double> rhs;     ///< assembled global RHS, [node·kDim]
  solver::CsrMatrix matrix;    ///< assembled momentum operator
  bool has_matrix = false;     ///< true under the semi-implicit scheme

  /// Phase-9 solve output (config.run_solve): the x-momentum solution and
  /// the Krylov convergence report.
  std::vector<double> solution;
  solver::SolveReport solve;
  bool has_solve = false;

  // ---- measurement -------------------------------------------------------
  sim::Counters total;                 ///< whole-run counters
  std::vector<sim::Counters> phase;    ///< index 1..9 (0 = outside phases)
  double cycles = 0.0;                 ///< convenience: total cycles
};

/// The eight instrumented phases of one assembly pass (§2.3).
inline constexpr int kNumPhases = 8;

/// Phase id of the chained Krylov solve (config.run_solve).  In the
/// transient loop the per-component momentum BiCGStab solves (9a–9c) are
/// all attributed here.
inline constexpr int kSolvePhase = 9;

/// Phase id of the pressure-Poisson CG solve (TimeLoop only).
inline constexpr int kPressurePhase = 10;

/// Phase id of the BLAS-1 velocity correction (TimeLoop only).
inline constexpr int kCorrectionPhase = 11;

/// Phases carried by every MiniAppResult / Measurement / CSV row: the eight
/// assembly phases, the momentum solve, the pressure solve and the velocity
/// correction.  This is the single source of truth the CSV header and row
/// writers derive their column count from; phases 10/11 stay zero outside
/// the transient loop.
inline constexpr int kNumInstrumentedPhases = kCorrectionPhase;
static_assert(kNumInstrumentedPhases <= sim::kDefaultNumPhases,
              "default Vpu profiler must cover every instrumented phase");

class MiniApp {
 public:
  /// The mesh and state must outlive the MiniApp.
  MiniApp(const fem::Mesh& mesh, const fem::State& state, MiniAppConfig cfg);

  const MiniAppConfig& config() const { return cfg_; }
  const fem::ShapeTable& shape() const { return shape_; }

  /// The modelled compiler's decisions for this configuration on @p machine.
  PhasePlan plan(const sim::MachineConfig& machine) const {
    return build_plan(machine, cfg_);
  }

  /// Execute the full assembly on @p vpu.  Resets the machine (counters,
  /// phases, caches) first so results are independent measurements.
  ///
  /// Thread safety: run() only reads the shared Mesh/State/ShapeTable and
  /// writes through @p vpu and the returned result, so concurrent calls on
  /// the same MiniApp (or on distinct MiniApps over one mesh) are safe as
  /// long as each caller owns its Vpu.  core::Experiment::run_points builds
  /// its sweep fan-out on this guarantee.
  MiniAppResult run(sim::Vpu& vpu) const;

  /// Run only the eight assembly phases WITHOUT resetting @p vpu and
  /// without snapshotting counters — the building block the transient
  /// TimeLoop repeats every step while counters accumulate across steps.
  /// Only the numerical fields (rhs / matrix) of @p res are filled; res
  /// and the chunk workspace @p ch are reset and reused in place.
  ///
  /// Callers that keep measuring after assembly (the chained solve, the
  /// transient loop) must route every pass through ONE res/ch pair kept
  /// alive for the whole measurement: the deterministic memory model
  /// renames host lines in first-touch order, so freeing a Vpu-touched
  /// buffer mid-measurement and letting a later allocation reuse its
  /// lines would make cache behaviour depend on allocator history (see
  /// mem/memory_hierarchy.h).  @p ch must have been built with this
  /// config's vector_size and scheme.
  void assemble_into(sim::Vpu& vpu, MiniAppResult& res,
                     ElementChunk& ch) const;

 private:
  const fem::Mesh* mesh_;
  const fem::State* state_;
  fem::ShapeTable shape_;
  MiniAppConfig cfg_;
};

}  // namespace vecfd::miniapp
