#include "miniapp/scenarios.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vecfd::miniapp {

namespace {

constexpr double pi = std::numbers::pi;

/// Face predicates with a spacing-relative tolerance: boundary nodes sit on
/// exact grid coordinates (mesh.cpp never displaces them) but i·dx can land
/// an ulp away from the domain length.
struct Faces {
  explicit Faces(const fem::Mesh& mesh)
      : cfg(mesh.config()),
        tol(1e-9 * (cfg.lx / cfg.nx + cfg.ly / cfg.ny + cfg.lz / cfg.nz)) {}

  bool at(double coord, double plane) const {
    return std::abs(coord - plane) <= tol;
  }
  bool x_min(std::span<const double, fem::kDim> p) const {
    return at(p[0], 0.0);
  }
  bool x_max(std::span<const double, fem::kDim> p) const {
    return at(p[0], cfg.lx);
  }
  bool z_max(std::span<const double, fem::kDim> p) const {
    return at(p[2], cfg.lz);
  }

  const fem::MeshConfig& cfg;
  double tol;
};

std::vector<int> pin_first_node(const fem::Mesh&) { return {0}; }

}  // namespace

Scenario scenario_cavity() {
  Scenario s;
  s.name = "cavity";
  s.description =
      "lid-driven cavity: no-slip walls, unit lid at z = lz, pressure pinned "
      "at node 0";
  s.mesh = {.nx = 6, .ny = 6, .nz = 6, .distortion = 0.05};
  s.physics = {.density = 1.0, .viscosity = 0.05, .dt = 0.02,
               .force = {0.0, 0.0, 0.0}};
  s.initial = [](const fem::Mesh&, int) {
    return std::array<double, fem::kDofs>{0.0, 0.0, 0.0, 0.0};
  };
  s.velocity_bc = [](const fem::Mesh& mesh, int node, double,
                     std::array<double, fem::kDim>& val) {
    if (!mesh.is_boundary_node(node)) return false;
    const Faces f(mesh);
    const bool lid = f.z_max(mesh.node(node));
    val = {lid ? 1.0 : 0.0, 0.0, 0.0};
    return true;
  };
  s.pressure_pins = pin_first_node;
  return s;
}

Scenario scenario_channel() {
  Scenario s;
  s.name = "channel";
  s.description =
      "channel flow on a 2x1x1 box: parabolic inflow at x = 0, no-slip "
      "walls, free outflow with the pressure increment pinned at x = lx";
  s.mesh = {.nx = 12, .ny = 6, .nz = 6, .lx = 2.0, .distortion = 0.05};
  s.physics = {.density = 1.0, .viscosity = 0.05, .dt = 0.02,
               .force = {0.0, 0.0, 0.0}};
  auto inflow = [](const fem::Mesh& mesh, std::span<const double, fem::kDim> p) {
    const auto& c = mesh.config();
    const double fy = (p[1] / c.ly) * (1.0 - p[1] / c.ly);
    const double fz = (p[2] / c.lz) * (1.0 - p[2] / c.lz);
    return 16.0 * fy * fz;  // peaks at 1 in the duct centre
  };
  s.initial = [](const fem::Mesh&, int) {
    return std::array<double, fem::kDofs>{0.0, 0.0, 0.0, 0.0};
  };
  s.velocity_bc = [inflow](const fem::Mesh& mesh, int node, double,
                           std::array<double, fem::kDim>& val) {
    if (!mesh.is_boundary_node(node)) return false;
    const Faces f(mesh);
    const auto p = mesh.node(node);
    if (f.x_max(p)) return false;  // free outflow
    val = {f.x_min(p) ? inflow(mesh, p) : 0.0, 0.0, 0.0};
    return true;
  };
  s.pressure_pins = [](const fem::Mesh& mesh) {
    const Faces f(mesh);
    std::vector<int> pins;
    for (int n = 0; n < mesh.num_nodes(); ++n) {
      if (mesh.is_boundary_node(n) && f.x_max(mesh.node(n))) {
        pins.push_back(n);
      }
    }
    return pins;
  };
  return s;
}

Scenario scenario_taylor_green() {
  Scenario s;
  s.name = "taylor-green";
  s.description =
      "decaying 2D Taylor-Green vortex (uniform in z): analytic Dirichlet "
      "data on the whole boundary, zero body force";
  s.mesh = {.nx = 6, .ny = 6, .nz = 6, .distortion = 0.0};
  s.physics = {.density = 1.0, .viscosity = 0.02, .dt = 0.01,
               .force = {0.0, 0.0, 0.0}};
  // The closed-form solution requires lx == ly (equal wavenumbers make the
  // convection term an exact gradient); the scenario mesh is a unit cube.
  const fem::Physics phys = s.physics;
  auto exact = [phys](const fem::Mesh& mesh, int node, double t) {
    const auto& c = mesh.config();
    const double nu = phys.viscosity / phys.density;
    const auto p = mesh.node(node);
    const double kx = pi / c.lx;
    const double ky = pi / c.ly;
    const double decay = std::exp(-(kx * kx + ky * ky) * nu * t);
    const double u = std::sin(kx * p[0]) * std::cos(ky * p[1]) * decay;
    const double v = -(kx / ky) * std::cos(kx * p[0]) * std::sin(ky * p[1]) *
                     decay;
    const double pr = 0.25 * phys.density *
                      (std::cos(2.0 * kx * p[0]) + std::cos(2.0 * ky * p[1])) *
                      decay * decay;
    return std::array<double, fem::kDofs>{u, v, 0.0, pr};
  };
  s.analytic = exact;
  s.initial = [exact](const fem::Mesh& mesh, int node) {
    return exact(mesh, node, 0.0);
  };
  s.velocity_bc = [exact](const fem::Mesh& mesh, int node, double t,
                          std::array<double, fem::kDim>& val) {
    if (!mesh.is_boundary_node(node)) return false;
    const auto e = exact(mesh, node, t);
    val = {e[0], e[1], e[2]};
    return true;
  };
  s.pressure_pins = pin_first_node;
  return s;
}

std::vector<Scenario> all_scenarios() {
  return {scenario_cavity(), scenario_channel(), scenario_taylor_green()};
}

Scenario scenario_by_name(const std::string& name) {
  if (name == "cavity") return scenario_cavity();
  if (name == "channel") return scenario_channel();
  if (name == "taylor-green") return scenario_taylor_green();
  throw std::invalid_argument("unknown scenario '" + name + "'");
}

}  // namespace vecfd::miniapp
