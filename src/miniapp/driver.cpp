#include "miniapp/driver.h"

#include <stdexcept>

#include "miniapp/chunk.h"
#include "miniapp/phases.h"

namespace vecfd::miniapp {

namespace {

// Phase kernels in execution order; index i runs as profiler phase i+1.
using PhaseFn = void (*)(sim::Vpu&, const Ctx&, ElementChunk&);
constexpr PhaseFn kPhaseTable[kNumPhases] = {phase1, phase2, phase3, phase4,
                                             phase5, phase6, phase7, phase8};

}  // namespace

MiniApp::MiniApp(const fem::Mesh& mesh, const fem::State& state,
                 MiniAppConfig cfg)
    : mesh_(&mesh), state_(&state), shape_(), cfg_(cfg) {
  if (cfg_.vector_size <= 0) {
    throw std::invalid_argument("MiniApp: vector_size must be positive");
  }
}

MiniAppResult MiniApp::run(sim::Vpu& vpu) const {
  vpu.reset();
  const PhasePlan plan = build_plan(vpu.config(), cfg_);
  const bool semi = cfg_.scheme == fem::Scheme::kSemiImplicit;

  MiniAppResult res;
  res.rhs.assign(static_cast<std::size_t>(mesh_->num_nodes()) * fem::kDim,
                 0.0);
  if (semi) {
    res.matrix = solver::CsrMatrix(mesh_->node_adjacency());
    res.has_matrix = true;
  }

  // The VECTOR_DIM dummy argument the vanilla phase 2 keeps re-loading.
  const double vector_dim_slot = static_cast<double>(cfg_.vector_size);

  Ctx ctx;
  ctx.mesh = mesh_;
  ctx.state = state_;
  ctx.shape = &shape_;
  ctx.plan = &plan;
  ctx.cfg = cfg_;
  ctx.vector_dim_slot = &vector_dim_slot;
  ctx.global_rhs = &res.rhs;
  ctx.global_matrix = semi ? &res.matrix : nullptr;

  ElementChunk ch(cfg_.vector_size, semi);
  const int nchunks = mesh_->num_chunks(cfg_.vector_size);
  for (int c = 0; c < nchunks; ++c) {
    const auto range = mesh_->chunk(cfg_.vector_size, c);
    ch.reset(range.first, range.count);
    for (int p = 0; p < kNumPhases; ++p) {
      sim::ScopedPhase scope(vpu.profiler(), p + 1);
      kPhaseTable[p](vpu, ctx, ch);
    }
  }

  res.total = vpu.counters();
  res.phase.resize(kNumPhases + 1);
  for (int p = 0; p <= kNumPhases; ++p) {
    res.phase[p] = vpu.profiler().phase(p);
  }
  res.cycles = res.total.total_cycles();
  return res;
}

}  // namespace vecfd::miniapp
