#include "miniapp/driver.h"

#include <stdexcept>

#include "miniapp/chunk.h"
#include "miniapp/phases.h"
#include "solver/vkernels.h"

namespace vecfd::miniapp {

namespace {

// Phase kernels in execution order; index i runs as profiler phase i+1.
using PhaseFn = void (*)(sim::Vpu&, const Ctx&, ElementChunk&);
constexpr PhaseFn kPhaseTable[kNumPhases] = {phase1, phase2, phase3, phase4,
                                             phase5, phase6, phase7, phase8};

}  // namespace

MiniApp::MiniApp(const fem::Mesh& mesh, const fem::State& state,
                 MiniAppConfig cfg)
    : mesh_(&mesh), state_(&state), shape_(), cfg_(cfg) {
  if (cfg_.vector_size <= 0) {
    throw std::invalid_argument("MiniApp: vector_size must be positive");
  }
  if (cfg_.run_solve && cfg_.scheme != fem::Scheme::kSemiImplicit) {
    throw std::invalid_argument(
        "MiniApp: run_solve requires the semi-implicit scheme (the explicit "
        "scheme assembles no matrix to solve)");
  }
}

void MiniApp::assemble_into(sim::Vpu& vpu, MiniAppResult& res,
                            ElementChunk& ch) const {
  const PhasePlan plan = build_plan(vpu.config(), cfg_);
  const bool semi = cfg_.scheme == fem::Scheme::kSemiImplicit;

  res.rhs.assign(static_cast<std::size_t>(mesh_->num_nodes()) * fem::kDim,
                 0.0);
  if (semi) {
    if (res.has_matrix) {
      res.matrix.set_zero();  // keep the pattern (and its memory lines)
    } else {
      res.matrix = solver::CsrMatrix(mesh_->node_adjacency());
      res.has_matrix = true;
    }
  }

  // The VECTOR_DIM dummy argument the vanilla phase 2 keeps re-loading.
  const double vector_dim_slot = static_cast<double>(cfg_.vector_size);

  Ctx ctx;
  ctx.mesh = mesh_;
  ctx.state = state_;
  ctx.shape = &shape_;
  ctx.plan = &plan;
  ctx.cfg = cfg_;
  ctx.vector_dim_slot = &vector_dim_slot;
  ctx.global_rhs = &res.rhs;
  ctx.global_matrix = semi ? &res.matrix : nullptr;

  const int nchunks = mesh_->num_chunks(cfg_.vector_size);
  for (int c = 0; c < nchunks; ++c) {
    const auto range = mesh_->chunk(cfg_.vector_size, c);
    ch.reset(range.first, range.count);
    for (int p = 0; p < kNumPhases; ++p) {
      sim::ScopedPhase scope(vpu.profiler(), p + 1);
      kPhaseTable[p](vpu, ctx, ch);
    }
  }
}

MiniAppResult MiniApp::run(sim::Vpu& vpu) const {
  vpu.reset();
  MiniAppResult res;
  // The chunk workspace outlives the chained solve: its buffers are
  // Vpu-touched, and freeing them before the solve allocates would let the
  // solver reuse their memory lines — nondeterministically, depending on
  // allocator history (see assemble_into).
  ElementChunk ch(cfg_.vector_size, cfg_.scheme == fem::Scheme::kSemiImplicit);
  assemble_into(vpu, res, ch);

  // Phase 9: the instrumented Krylov solve of the x-momentum system
  // K·u = f on the operator just assembled — the indexed-load SpMV
  // workload the co-design argument is made on.
  if (cfg_.run_solve) {
    const int nn = mesh_->num_nodes();
    res.solution.assign(static_cast<std::size_t>(nn), 0.0);
    std::vector<double> rhs0(static_cast<std::size_t>(nn));
    solver::SolveOptions sopts;
    sopts.max_iterations = cfg_.solve_max_iterations;
    sopts.rel_tolerance = cfg_.solve_rel_tolerance;
    sim::ScopedPhase scope(vpu.profiler(), kSolvePhase);
    solver::vpack_strided(vpu, res.rhs.data(), fem::kDim, rhs0,
                          cfg_.vector_size);
    res.solve = solver::vbicgstab(vpu, res.matrix, rhs0, res.solution, sopts,
                                  cfg_.vector_size, nullptr,
                                  cfg_.solve_format);
    res.has_solve = true;
  }

  res.total = vpu.counters();
  res.phase.resize(kNumInstrumentedPhases + 1);
  for (int p = 0; p <= kNumInstrumentedPhases; ++p) {
    res.phase[p] = vpu.profiler().phase(p);
  }
  res.cycles = res.total.total_cycles();
  return res;
}

}  // namespace vecfd::miniapp
