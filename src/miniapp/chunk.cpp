#include "miniapp/chunk.h"

#include <stdexcept>

namespace vecfd::miniapp {

using fem::kDim;
using fem::kDofs;
using fem::kGauss;
using fem::kNodes;

ElementChunk::ElementChunk(int vector_size, bool with_matrix)
    : vs_(vector_size), with_matrix_(with_matrix) {
  if (vector_size <= 0) {
    throw std::invalid_argument("ElementChunk: vector_size must be > 0");
  }
  const auto n = static_cast<std::size_t>(vs_);
  lnods_.assign(static_cast<std::size_t>(kNodes) * n, 0);
  dtfac_.assign(n, 0.0);
  valid_.assign(n, 0);
  etype_.assign(n, 0);
  elcod_.assign(static_cast<std::size_t>(kDim) * kNodes * n, 0.0);
  elunk_.assign(static_cast<std::size_t>(kDofs) * kNodes * n, 0.0);
  elvel_old_.assign(static_cast<std::size_t>(kDim) * kNodes * n, 0.0);
  jtmp_.assign(static_cast<std::size_t>(kDim) * kDim * n, 0.0);
  itmp_.assign(static_cast<std::size_t>(kDim) * kDim * n, 0.0);
  gpcar_.assign(static_cast<std::size_t>(kGauss) * kDim * kNodes * n, 0.0);
  gpvol_.assign(static_cast<std::size_t>(kGauss) * n, 0.0);
  gpvel_.assign(static_cast<std::size_t>(2) * kGauss * kDim * n, 0.0);
  gpadv_.assign(static_cast<std::size_t>(kGauss) * kDim * n, 0.0);
  gpgve_.assign(static_cast<std::size_t>(kGauss) * kDim * kDim * n, 0.0);
  gppre_.assign(static_cast<std::size_t>(kGauss) * n, 0.0);
  tau_.assign(static_cast<std::size_t>(kGauss) * n, 0.0);
  gprhs_.assign(static_cast<std::size_t>(kGauss) * kDim * n, 0.0);
  gppre_t_.assign(static_cast<std::size_t>(kGauss) * n, 0.0);
  dmat_.assign(static_cast<std::size_t>(kGauss) * kNodes * n, 0.0);
  wmat_.assign(static_cast<std::size_t>(kGauss) * kNodes * n, 0.0);
  conv_.assign(static_cast<std::size_t>(kNodes) * kNodes * n, 0.0);
  visc_.assign(static_cast<std::size_t>(kNodes) * kNodes * n, 0.0);
  elrhs_.assign(static_cast<std::size_t>(kDim) * kNodes * n, 0.0);
  if (with_matrix_) {
    mass_.assign(static_cast<std::size_t>(kNodes) * kNodes * n, 0.0);
    block_.assign(static_cast<std::size_t>(kNodes) * kNodes * n, 0.0);
  }
}

void ElementChunk::reset(int first_element, int count) {
  if (count <= 0 || count > vs_) {
    throw std::invalid_argument("ElementChunk::reset: bad count");
  }
  first_ = first_element;
  count_ = count;
}

std::size_t ElementChunk::footprint_bytes() const {
  std::size_t bytes = 0;
  bytes += lnods_.size() * sizeof(std::int32_t);
  bytes += valid_.size() * sizeof(std::int32_t);
  bytes += etype_.size() * sizeof(std::int32_t);
  bytes += (dtfac_.size() + elcod_.size() + elunk_.size() +
            elvel_old_.size() + jtmp_.size() + itmp_.size() + gpcar_.size() +
            gpvol_.size() + gpvel_.size() + gpadv_.size() + gpgve_.size() +
            gppre_.size() + tau_.size() + gprhs_.size() + gppre_t_.size() +
            mass_.size() + dmat_.size() + wmat_.size() + conv_.size() +
            visc_.size() + block_.size() + elrhs_.size()) *
           sizeof(double);
  return bytes;
}

}  // namespace vecfd::miniapp
