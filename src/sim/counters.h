// vecfd::sim — hardware-counter model.
//
// Mirrors the quantities the paper gathers with PAPI/Extrae and the Vehave
// emulator (§2.2): total and vector cycles (ct, cv), total and vector
// instruction counts (it, iv), per-class instruction counts, the summed
// vector length of vector instructions (for AVL), and L1/L2 data-cache
// misses (mL1, mL2).
//
// The counter set is a REGISTRY: the VECFD_COUNTERS X-macro below is the
// single source of truth for every counter, and everything that must stay
// in sync with it — operator+=/operator-=, the per-counter CSV columns
// (core/csv.cpp), the registry emission of tools/bench_to_json
// (--counters-out), and the field-by-field conservation comparison in
// tests/test_time_loop_conservation.cpp — is generated from it, either by
// expanding the macro directly or through the visit()/visit_fields()/
// visit_pairs() visitors.  Adding a counter is ONE line here; a consumer
// that tries to enumerate counters by hand instead is a vecfd-lint
// `counter-registry` finding, and a field declared outside the registry
// trips the sizeof static_assert at the bottom.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "sim/instruction.h"

namespace vecfd::sim {

/// Instruction class a counter counts, or kNotInstr for cycle / work /
/// memory counters.  Mirrors InstrKind one-to-one so record() can be
/// generated from the registry.
enum class CounterClass {
  kNotInstr,
  kScalarAlu,
  kScalarMem,
  kVConfig,
  kVArith,
  kVMemUnit,
  kVMemStrided,
  kVMemIndexed,
  kVCtrl,
};

/// Which derived CSV schemas carry the counter as its own column
/// (core/csv.cpp iterates the registry in declaration order).
enum class CounterCsv {
  kNone,   ///< not a CSV column (feeds derived metrics instead)
  kSweep,  ///< sweep CSV only
  kBoth,   ///< sweep AND campaign CSV
};

constexpr bool in_sweep_csv(CounterCsv c) { return c != CounterCsv::kNone; }
constexpr bool in_campaign_csv(CounterCsv c) { return c == CounterCsv::kBoth; }

constexpr bool is_scalar_class(CounterClass c) {
  return c == CounterClass::kScalarAlu || c == CounterClass::kScalarMem;
}
constexpr bool is_vector_memory_class(CounterClass c) {
  return c == CounterClass::kVMemUnit || c == CounterClass::kVMemStrided ||
         c == CounterClass::kVMemIndexed;
}
/// The paper's "Vector" box: arithmetic + memory + control lane.
constexpr bool is_vector_class(CounterClass c) {
  return c == CounterClass::kVArith || is_vector_memory_class(c) ||
         c == CounterClass::kVCtrl;
}
constexpr bool is_instr_class(CounterClass c) {
  return c != CounterClass::kNotInstr;
}

// The counter registry.  X(name, type, class, csv, csv_column, doc):
//   name        field name (also the visitor-reported name)
//   type        std::uint64_t for counts, double for cycle accumulators
//   class       CounterClass enumerator (sans scope) — kScalarAlu..kVCtrl
//               for instruction counters, kNotInstr otherwise; record()
//               and the derived instruction totals are generated from it
//   csv         CounterCsv enumerator (sans scope): which CSV schemas
//               carry the counter as its own column
//   csv_column  column name in those schemas ("" when csv is kNone)
//   doc         one-line description
//
// Declaration order is load-bearing for the CSV schemas: columns appear in
// registry order, so appending new counters at the end keeps existing
// golden CSVs stable.
// clang-format off
#define VECFD_COUNTERS(X)                                                     \
  X(scalar_alu_instrs, std::uint64_t, kScalarAlu, kNone, "",                  \
    "scalar integer/FP arithmetic, branches, address calculation")            \
  X(scalar_mem_instrs, std::uint64_t, kScalarMem, kNone, "",                  \
    "scalar loads and stores")                                                \
  X(vconfig_instrs, std::uint64_t, kVConfig, kNone, "",                       \
    "vsetvl-style vector-length configuration")                               \
  X(varith_instrs, std::uint64_t, kVArith, kNone, "",                         \
    "vector arithmetic (add/mul/fma/div/sqrt/reductions)")                    \
  X(vmem_unit_instrs, std::uint64_t, kVMemUnit, kNone, "",                    \
    "unit-stride vector loads/stores")                                        \
  X(vmem_strided_instrs, std::uint64_t, kVMemStrided, kNone, "",              \
    "constant-stride vector loads/stores")                                    \
  X(vmem_indexed_instrs, std::uint64_t, kVMemIndexed, kNone, "",              \
    "indexed (gather/scatter) vector loads/stores")                           \
  X(vctrl_instrs, std::uint64_t, kVCtrl, kNone, "",                           \
    "control-lane: broadcasts, moves, merges, slides")                        \
  X(scalar_cycles, double, kNotInstr, kNone, "",                              \
    "cycles in scalar instructions (includes vconfig issue cost)")            \
  X(vector_cycles, double, kNotInstr, kNone, "",                              \
    "cv: cycles executing vector instructions")                               \
  X(vl_sum, std::uint64_t, kNotInstr, kNone, "",                              \
    "sum of vl over all vector instructions (AVL numerator)")                 \
  X(flops, std::uint64_t, kNotInstr, kSweep, "flops",                         \
    "double-precision FLOPs actually performed")                              \
  X(l1_accesses, std::uint64_t, kNotInstr, kNone, "",                         \
    "L1 data-cache accesses")                                                 \
  X(l1_misses, std::uint64_t, kNotInstr, kSweep, "l1_misses",                 \
    "mL1: L1 data-cache misses")                                              \
  X(l2_misses, std::uint64_t, kNotInstr, kSweep, "l2_misses",                 \
    "mL2: L2 data-cache misses")                                              \
  X(gather_lanes, std::uint64_t, kNotInstr, kNone, "",                        \
    "lanes actually gathered by vgather (masked pad lanes excluded)")         \
  X(gather_lines_touched, std::uint64_t, kNotInstr, kBoth, "gather_lines",    \
    "distinct cache lines touched by vgather, summed per instruction - "      \
    "the locality metric the SELL/RCM co-design attacks")                     \
  X(coalesced_lanes, std::uint64_t, kNotInstr, kBoth, "coalesced_lanes",      \
    "gather lanes served by the coalescing unit-stride fast path "            \
    "(Vpu::note_coalesced_lanes)")                                            \
  X(pad_lanes, std::uint64_t, kNotInstr, kBoth, "pad_lanes",                  \
    "vgather lanes masked off as storage-format padding: +0.0 and ZERO "     \
    "cache traffic (pad-hygiene contract, test_sell_format)")                 \
  X(halo_lines_sent, std::uint64_t, kNotInstr, kBoth, "halo_lines_sent",      \
    "distinct owner cache lines read to serve ghost transfers "               \
    "(sim::HaloExchange, charged on the OWNING shard's Vpu)")                 \
  X(halo_lines_recv, std::uint64_t, kNotInstr, kBoth, "halo_lines_recv",      \
    "distinct ghost-slot cache lines written by ghost transfers "             \
    "(sim::HaloExchange, charged on the RECEIVING shard's Vpu)")              \
  X(halo_messages, std::uint64_t, kNotInstr, kBoth, "halo_messages",          \
    "point-to-point ghost-exchange messages: one per (receiver, owner) "      \
    "pair with a non-empty halo block per exchange")
// clang-format on

/// Number of registered counters.
#define VECFD_COUNTER_ONE(name, type, cls, csv, col, doc) +1
inline constexpr int kNumCounters = 0 VECFD_COUNTERS(VECFD_COUNTER_ONE);
#undef VECFD_COUNTER_ONE

// record() case generation: one helper per CounterClass enumerator maps an
// instruction-class counter to its switch case; kNotInstr counters emit
// nothing.  Token-pasted from the registry's class column.
#define VECFD_COUNTER_CASE_kNotInstr(name)
#define VECFD_COUNTER_CASE_kScalarAlu(name) \
  case InstrKind::kScalarAlu: ++name; break;
#define VECFD_COUNTER_CASE_kScalarMem(name) \
  case InstrKind::kScalarMem: ++name; break;
#define VECFD_COUNTER_CASE_kVConfig(name) \
  case InstrKind::kVConfig: ++name; break;
#define VECFD_COUNTER_CASE_kVArith(name) \
  case InstrKind::kVArith: ++name; break;
#define VECFD_COUNTER_CASE_kVMemUnit(name) \
  case InstrKind::kVMemUnit: ++name; break;
#define VECFD_COUNTER_CASE_kVMemStrided(name) \
  case InstrKind::kVMemStrided: ++name; break;
#define VECFD_COUNTER_CASE_kVMemIndexed(name) \
  case InstrKind::kVMemIndexed: ++name; break;
#define VECFD_COUNTER_CASE_kVCtrl(name) \
  case InstrKind::kVCtrl: ++name; break;

/// Metadata a visitor receives alongside each counter's value.
struct CounterInfo {
  const char* name;        ///< field name, e.g. "gather_lines_touched"
  CounterClass cls;        ///< instruction class, or kNotInstr
  CounterCsv csv;          ///< CSV schema membership
  const char* csv_column;  ///< column name where csv != kNone, else ""
};

struct Counters {
  // ---- the registered counters, in registry order ------------------------
#define VECFD_COUNTER_FIELD(name, type, cls, csv, col, doc) type name = {};
  VECFD_COUNTERS(VECFD_COUNTER_FIELD)
#undef VECFD_COUNTER_FIELD

  // ---- registry visitors -------------------------------------------------
  /// Visit the registry metadata only (no instance): fn(CounterInfo).
  /// This is what schema writers iterate so column sets derive from the
  /// registry instead of hand-kept lists.
  template <class Fn>
  static constexpr void visit_fields(Fn&& fn) {
#define VECFD_COUNTER_VISIT(name, type, cls, csv, col, doc)               \
    fn(CounterInfo{#name, CounterClass::cls, CounterCsv::csv, col});
    VECFD_COUNTERS(VECFD_COUNTER_VISIT)
#undef VECFD_COUNTER_VISIT
  }

  /// Visit every counter with its value: fn(CounterInfo, const T&).
  template <class Fn>
  constexpr void visit(Fn&& fn) const {
#define VECFD_COUNTER_VISIT(name, type, cls, csv, col, doc)               \
    fn(CounterInfo{#name, CounterClass::cls, CounterCsv::csv, col}, name);
    VECFD_COUNTERS(VECFD_COUNTER_VISIT)
#undef VECFD_COUNTER_VISIT
  }

  /// Mutable overload: fn(CounterInfo, T&).  This is what deserializers
  /// iterate (miniapp/checkpoint.cpp) so a counter registered here is
  /// round-tripped through the checkpoint format automatically.
  template <class Fn>
  constexpr void visit(Fn&& fn) {
#define VECFD_COUNTER_VISIT(name, type, cls, csv, col, doc)               \
    fn(CounterInfo{#name, CounterClass::cls, CounterCsv::csv, col}, name);
    VECFD_COUNTERS(VECFD_COUNTER_VISIT)
#undef VECFD_COUNTER_VISIT
  }

  /// Visit two instances in lockstep: fn(CounterInfo, const T&, const T&).
  /// The conservation test compares Σphases against totals through this,
  /// so a new counter is covered the moment it enters the registry.
  template <class Fn>
  static constexpr void visit_pairs(const Counters& a, const Counters& b,
                                    Fn&& fn) {
#define VECFD_COUNTER_VISIT(name, type, cls, csv, col, doc)               \
    fn(CounterInfo{#name, CounterClass::cls, CounterCsv::csv, col},       \
       a.name, b.name);
    VECFD_COUNTERS(VECFD_COUNTER_VISIT)
#undef VECFD_COUNTER_VISIT
  }

  // ---- derived totals (generated from the class tags) --------------------
  std::uint64_t scalar_instrs() const {
    return class_sum([](CounterClass c) { return is_scalar_class(c); });
  }
  std::uint64_t vmem_instrs() const {
    return class_sum([](CounterClass c) { return is_vector_memory_class(c); });
  }
  /// iv: instructions executed on the VPU (Figure 1 "Vector" box).
  std::uint64_t vector_instrs() const {
    return class_sum([](CounterClass c) { return is_vector_class(c); });
  }
  /// it: every executed instruction.
  std::uint64_t total_instrs() const {
    return class_sum([](CounterClass c) { return is_instr_class(c); });
  }
  /// ct: total cycles (scalar and vector pipelines are not overlapped in the
  /// in-order prototype, matching the paper's observation in §4).
  double total_cycles() const { return scalar_cycles + vector_cycles; }

  /// Record one instruction of class @p kind costing @p cycles; vector
  /// instructions additionally account their vector length @p vl.  The
  /// switch cases are generated from the registry's class column, so an
  /// instruction-class counter cannot be registered without being counted.
  void record(InstrKind kind, double cycles, std::uint64_t vl = 0) {
    switch (kind) {
#define VECFD_COUNTER_RECORD(name, type, cls, csv, col, doc) \
      VECFD_COUNTER_CASE_##cls(name)
      VECFD_COUNTERS(VECFD_COUNTER_RECORD)
#undef VECFD_COUNTER_RECORD
    }
    if (is_vector(kind)) {
      vector_cycles += cycles;
      vl_sum += vl;
    } else {
      scalar_cycles += cycles;
    }
  }

  Counters& operator+=(const Counters& o);
  Counters& operator-=(const Counters& o);
  friend Counters operator+(Counters a, const Counters& b) { return a += b; }
  friend Counters operator-(Counters a, const Counters& b) { return a -= b; }

 private:
  template <class Pred>
  std::uint64_t class_sum(Pred pred) const {
    std::uint64_t t = 0;
    visit([&](const CounterInfo& info, const auto& v) {
      if constexpr (std::is_same_v<std::decay_t<decltype(v)>,
                                   std::uint64_t>) {
        if (pred(info.cls)) t += v;
      }
    });
    return t;
  }
};

// Every counter is an 8-byte scalar, so any field smuggled into the struct
// past the registry (bypassing operator+=, the CSV schemas and the
// conservation test) changes sizeof and fails here at compile time.
static_assert(sizeof(Counters) == static_cast<std::size_t>(kNumCounters) * 8,
              "Counters has a data member that is not in the VECFD_COUNTERS "
              "registry — add it there, never as a bare field");

inline Counters& Counters::operator+=(const Counters& o) {
#define VECFD_COUNTER_ADD(name, type, cls, csv, col, doc) name += o.name;
  VECFD_COUNTERS(VECFD_COUNTER_ADD)
#undef VECFD_COUNTER_ADD
  return *this;
}

inline Counters& Counters::operator-=(const Counters& o) {
#define VECFD_COUNTER_SUB(name, type, cls, csv, col, doc) name -= o.name;
  VECFD_COUNTERS(VECFD_COUNTER_SUB)
#undef VECFD_COUNTER_SUB
  return *this;
}

}  // namespace vecfd::sim
