// vecfd::sim — hardware-counter model.
//
// Mirrors the quantities the paper gathers with PAPI/Extrae and the Vehave
// emulator (§2.2): total and vector cycles (ct, cv), total and vector
// instruction counts (it, iv), per-class instruction counts, the summed
// vector length of vector instructions (for AVL), and L1/L2 data-cache
// misses (mL1, mL2).
#pragma once

#include <cstdint>

#include "sim/instruction.h"

namespace vecfd::sim {

struct Counters {
  // ---- instruction counts, by class ------------------------------------
  std::uint64_t scalar_alu_instrs = 0;
  std::uint64_t scalar_mem_instrs = 0;
  std::uint64_t vconfig_instrs = 0;
  std::uint64_t varith_instrs = 0;
  std::uint64_t vmem_unit_instrs = 0;
  std::uint64_t vmem_strided_instrs = 0;
  std::uint64_t vmem_indexed_instrs = 0;
  std::uint64_t vctrl_instrs = 0;

  // ---- cycles ------------------------------------------------------------
  double scalar_cycles = 0.0;   ///< includes vconfig issue cost
  double vector_cycles = 0.0;   ///< cv: cycles executing vector instructions

  // ---- vector-length accounting -------------------------------------------
  std::uint64_t vl_sum = 0;     ///< sum of vl over all vector instructions

  // ---- work & memory -------------------------------------------------------
  std::uint64_t flops = 0;      ///< double-precision FLOPs actually performed
  std::uint64_t l1_accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;

  // ---- indexed-access quality (the sparse-format co-design counters) -----
  /// Lanes actually gathered by vgather (masked pad lanes excluded).
  std::uint64_t gather_lanes = 0;
  /// Distinct cache lines touched by vgather, summed per instruction — the
  /// locality metric the SELL/RCM co-design attacks: a banded operator
  /// reuses lines across lanes, a scattered numbering touches one per lane.
  std::uint64_t gather_lines_touched = 0;
  /// vgather lanes masked off as storage-format padding: they read +0.0 and
  /// generate NO cache traffic (the pad-hygiene contract of solver ELL/SELL
  /// mirrors, asserted in test_sell_format).
  std::uint64_t pad_lanes = 0;
  /// Gather lanes served by the coalescing fast path instead (a contiguous
  /// column run detected at assembly time, issued as a unit-stride vload —
  /// see Vpu::note_coalesced_lanes).
  std::uint64_t coalesced_lanes = 0;

  // ---- derived totals --------------------------------------------------
  std::uint64_t scalar_instrs() const {
    return scalar_alu_instrs + scalar_mem_instrs;
  }
  std::uint64_t vmem_instrs() const {
    return vmem_unit_instrs + vmem_strided_instrs + vmem_indexed_instrs;
  }
  /// iv: instructions executed on the VPU (Figure 1 "Vector" box).
  std::uint64_t vector_instrs() const {
    return varith_instrs + vmem_instrs() + vctrl_instrs;
  }
  /// it: every executed instruction.
  std::uint64_t total_instrs() const {
    return scalar_instrs() + vconfig_instrs + vector_instrs();
  }
  /// ct: total cycles (scalar and vector pipelines are not overlapped in the
  /// in-order prototype, matching the paper's observation in §4).
  double total_cycles() const { return scalar_cycles + vector_cycles; }

  /// Record one instruction of class @p kind costing @p cycles; vector
  /// instructions additionally account their vector length @p vl.
  void record(InstrKind kind, double cycles, std::uint64_t vl = 0) {
    switch (kind) {
      case InstrKind::kScalarAlu:   ++scalar_alu_instrs; break;
      case InstrKind::kScalarMem:   ++scalar_mem_instrs; break;
      case InstrKind::kVConfig:     ++vconfig_instrs; break;
      case InstrKind::kVArith:      ++varith_instrs; break;
      case InstrKind::kVMemUnit:    ++vmem_unit_instrs; break;
      case InstrKind::kVMemStrided: ++vmem_strided_instrs; break;
      case InstrKind::kVMemIndexed: ++vmem_indexed_instrs; break;
      case InstrKind::kVCtrl:       ++vctrl_instrs; break;
    }
    if (is_vector(kind)) {
      vector_cycles += cycles;
      vl_sum += vl;
    } else {
      scalar_cycles += cycles;
    }
  }

  Counters& operator+=(const Counters& o);
  Counters& operator-=(const Counters& o);
  friend Counters operator+(Counters a, const Counters& b) { return a += b; }
  friend Counters operator-(Counters a, const Counters& b) { return a -= b; }
};

inline Counters& Counters::operator+=(const Counters& o) {
  scalar_alu_instrs += o.scalar_alu_instrs;
  scalar_mem_instrs += o.scalar_mem_instrs;
  vconfig_instrs += o.vconfig_instrs;
  varith_instrs += o.varith_instrs;
  vmem_unit_instrs += o.vmem_unit_instrs;
  vmem_strided_instrs += o.vmem_strided_instrs;
  vmem_indexed_instrs += o.vmem_indexed_instrs;
  vctrl_instrs += o.vctrl_instrs;
  scalar_cycles += o.scalar_cycles;
  vector_cycles += o.vector_cycles;
  vl_sum += o.vl_sum;
  flops += o.flops;
  l1_accesses += o.l1_accesses;
  l1_misses += o.l1_misses;
  l2_misses += o.l2_misses;
  gather_lanes += o.gather_lanes;
  gather_lines_touched += o.gather_lines_touched;
  pad_lanes += o.pad_lanes;
  coalesced_lanes += o.coalesced_lanes;
  return *this;
}

inline Counters& Counters::operator-=(const Counters& o) {
  scalar_alu_instrs -= o.scalar_alu_instrs;
  scalar_mem_instrs -= o.scalar_mem_instrs;
  vconfig_instrs -= o.vconfig_instrs;
  varith_instrs -= o.varith_instrs;
  vmem_unit_instrs -= o.vmem_unit_instrs;
  vmem_strided_instrs -= o.vmem_strided_instrs;
  vmem_indexed_instrs -= o.vmem_indexed_instrs;
  vctrl_instrs -= o.vctrl_instrs;
  scalar_cycles -= o.scalar_cycles;
  vector_cycles -= o.vector_cycles;
  vl_sum -= o.vl_sum;
  flops -= o.flops;
  l1_accesses -= o.l1_accesses;
  l1_misses -= o.l1_misses;
  l2_misses -= o.l2_misses;
  gather_lanes -= o.gather_lanes;
  gather_lines_touched -= o.gather_lines_touched;
  pad_lanes -= o.pad_lanes;
  coalesced_lanes -= o.coalesced_lanes;
  return *this;
}

}  // namespace vecfd::sim
