#include "sim/timing_model.h"

#include <cmath>

namespace vecfd::sim {

double TimingModel::fsm_factor(int vl) const {
  const int group = cfg_->lanes * cfg_->fsm_group;
  if (cfg_->fsm_group <= 1 || group <= 0) return 1.0;
  return (vl % group == 0) ? 1.0 : cfg_->fsm_penalty;
}

double TimingModel::chunks(int vl) const {
  const double per_lane = std::ceil(static_cast<double>(vl) / cfg_->lanes);
  return per_lane * fsm_factor(vl);
}

double TimingModel::varith_cycles(int vl, ArithOp op) const {
  double factor = 1.0;
  switch (op) {
    case ArithOp::kSimple:  factor = 1.0; break;
    case ArithOp::kDivSqrt: factor = cfg_->div_factor; break;
    case ArithOp::kReduce:  factor = 2.0; break;
  }
  return cfg_->arith_startup + chunks(vl) * factor;
}

double TimingModel::vctrl_cycles(int vl) const {
  return cfg_->arith_startup + chunks(vl) * cfg_->ctrl_factor;
}

double TimingModel::vmem_unit_cycles(int vl) const {
  const double bytes = 8.0 * vl;
  return cfg_->mem_startup + bytes / cfg_->bytes_per_cycle;
}

double TimingModel::vmem_strided_cycles(int vl) const {
  return cfg_->mem_startup + vl / cfg_->strided_elems_per_cycle;
}

double TimingModel::vmem_indexed_cycles(int vl) const {
  return cfg_->mem_startup + vl / cfg_->indexed_elems_per_cycle;
}

}  // namespace vecfd::sim
