#include "sim/halo_exchange.h"

#include <stdexcept>

namespace vecfd::sim {

HaloExchange::HaloExchange(std::vector<std::vector<HaloBlock>> blocks_per_shard,
                           int line_bytes)
    : plan_(std::move(blocks_per_shard)) {
  if (line_bytes < 8) {
    throw std::invalid_argument("HaloExchange: line_bytes must cover a double");
  }
  doubles_per_line_ = line_bytes / 8;
  for (const auto& blocks : plan_) {
    for (const auto& b : blocks) {
      if (b.src_shard < 0 || b.src_shard >= shards()) {
        throw std::invalid_argument("HaloExchange: src_shard out of range");
      }
      for (std::size_t i = 1; i < b.src_local.size(); ++i) {
        if (b.src_local[i] <= b.src_local[i - 1]) {
          throw std::invalid_argument(
              "HaloExchange: src_local must be strictly ascending");
        }
      }
    }
  }
}

std::uint64_t HaloExchange::lines_of(
    std::span<const std::int32_t> ascending) const {
  std::uint64_t lines = 0;
  std::int32_t last_line = -1;
  for (const std::int32_t ix : ascending) {
    const std::int32_t line = ix / static_cast<std::int32_t>(doubles_per_line_);
    if (lines == 0 || line != last_line) {
      ++lines;
      last_line = line;
    }
  }
  return lines;
}

void HaloExchange::exchange(std::span<Vpu* const> vpus,
                            std::span<double* const> locals) const {
  if (static_cast<int>(vpus.size()) != shards() ||
      static_cast<int>(locals.size()) != shards()) {
    throw std::invalid_argument("HaloExchange: shard count mismatch");
  }
  for (int p = 0; p < shards(); ++p) {
    for (const auto& b : plan_[static_cast<std::size_t>(p)]) {
      if (b.src_local.empty()) continue;
      const double* src = locals[static_cast<std::size_t>(b.src_shard)];
      double* dst = locals[static_cast<std::size_t>(p)] + b.dst_begin;
      for (std::size_t i = 0; i < b.src_local.size(); ++i) {
        dst[i] = src[b.src_local[i]];
      }
      // The receiving side writes one contiguous ghost-slot run; its line
      // count is the span of [dst_begin, dst_begin + count) in lines.
      const int last = b.dst_begin + static_cast<int>(b.src_local.size()) - 1;
      const std::uint64_t recv_lines = static_cast<std::uint64_t>(
          last / doubles_per_line_ - b.dst_begin / doubles_per_line_ + 1);
      vpus[static_cast<std::size_t>(p)]->note_halo_messages(1);
      vpus[static_cast<std::size_t>(p)]->note_halo_lines_recv(recv_lines);
      vpus[static_cast<std::size_t>(b.src_shard)]->note_halo_lines_sent(
          lines_of(b.src_local));
    }
  }
}

}  // namespace vecfd::sim
