// vecfd::sim — deterministic fault injection for fault-tolerance testing.
//
// A long-lived campaign service must survive point failures (ROADMAP item
// 2): solver breakdowns, corrupted operators, poisoned right-hand sides,
// dying workers.  Reproducing those events with real hardware faults or
// timing races would make every recovery test flaky, so this header models
// them as a FAULT PLAN: a deterministic, seed-indexed list of (kind,
// campaign point, step) triples, parsed from a compact CLI spec
// (`vecfd-run --fault-plan`) or generated from a seed.  The plan is a pure
// lookup table — `spec_for()` / `worker_death()` are const and
// data-race-free, so the campaign fan-out can consult one shared plan from
// every worker.
//
// The four injectable kinds exercise the four recovery paths:
//
//   breakdown     the phase-10 pressure solver exits through its
//                 instrumented SolveReport::failure path at the chosen
//                 step (SolveOptions::inject_breakdown)
//   nan-rhs       the weak-divergence RHS feeding the pressure solve is
//                 NaN-poisoned host-side, so non-finite values must travel
//                 the full solve → correction → diagnostics pipeline and
//                 surface in final_divergence
//   zero-diag     the assembled momentum operator loses its first diagonal
//                 entry after the Dirichlet pass, tripping the Jacobi
//                 setup failure exit of every component solve
//   worker-death  the campaign worker running the point throws before the
//                 TimeLoop even starts — the per-point isolation /
//                 collect-all-errors path (core/campaign.h)
//
// In-run faults fire on a point's FIRST attempt only: the retry ladder
// re-runs the point with the fault disarmed (a transient fault, the common
// HPC case), so `--fault-plan` + `--max-retries` demonstrates recovery
// end to end.  Design notes: DESIGN.md §10.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vecfd::sim {

enum class FaultKind {
  kNone,
  kSolverBreakdown,
  kNanRhs,
  kZeroDiagonal,
  kWorkerDeath,
};

constexpr const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone:            return "none";
    case FaultKind::kSolverBreakdown: return "breakdown";
    case FaultKind::kNanRhs:          return "nan-rhs";
    case FaultKind::kZeroDiagonal:    return "zero-diag";
    case FaultKind::kWorkerDeath:     return "worker-death";
  }
  return "?";
}

/// One armed in-run fault, threaded into a TimeLoop via
/// TimeLoopConfig::fault.  Default-constructed = disarmed (the default
/// config injects nothing, so the historic instruction stream is
/// untouched).
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  int step = 0;  ///< 0-based step index at which the fault fires

  bool armed() const { return kind != FaultKind::kNone; }
  /// Does a fault of kind @p k fire at step @p at_step of this run?
  bool fires(FaultKind k, int at_step) const {
    return kind == k && step == at_step;
  }
};

/// One plan entry: fault @p kind at campaign point @p point; @p step is the
/// 0-based step within that point's run (ignored for kWorkerDeath, which
/// strikes before the run starts).
struct PlannedFault {
  FaultKind kind = FaultKind::kNone;
  int point = 0;
  int step = 0;
};

/// A deterministic campaign fault plan.  Two spellings:
///
///   explicit   `kind@point[.step]` entries joined with ';', e.g.
///              "breakdown@2.1;worker-death@0" — breakdown at step 1 of
///              point 2, worker death at point 0 (step defaults to 0)
///   seeded     "seed=42:faults=3" — three faults drawn from a splitmix64
///              stream; materialize(num_points, steps) maps the stream
///              onto the concrete campaign shape, identically for every
///              run with the same seed
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parse a plan spec (grammar above).
  /// @throws std::invalid_argument naming the offending token.
  static FaultPlan parse(const std::string& spec);

  /// True when the plan came from a `seed=` spec and still needs
  /// materialize() before lookups are allowed.
  bool seeded() const { return seed_.has_value(); }

  /// Expand a seeded plan onto a campaign of @p num_points points of
  /// @p steps steps each (deterministic in the seed; no-op for explicit
  /// plans).  @throws std::invalid_argument on a non-positive shape.
  void materialize(int num_points, int steps);

  bool empty() const { return faults_.empty() && !seed_.has_value(); }
  const std::vector<PlannedFault>& faults() const { return faults_; }

  /// The in-run fault armed for campaign point @p point (first matching
  /// entry; disarmed spec when none).  Pure lookup, safe to call
  /// concurrently.  @throws std::logic_error on an unmaterialized plan.
  FaultSpec spec_for(int point) const;

  /// Is a simulated worker death planned for @p point?
  bool worker_death(int point) const;

  /// Human-readable round-trip of the materialized plan ("breakdown@2.1").
  std::string describe() const;

 private:
  std::optional<std::uint64_t> seed_;
  int seed_faults_ = 1;
  std::vector<PlannedFault> faults_;
};

}  // namespace vecfd::sim
