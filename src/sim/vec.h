// vecfd::sim — value of a vector register.
//
// A Vec carries the actual double-precision elements a modelled vector
// register holds, so simulated kernels compute bit-exact results that the
// test suite validates against the golden scalar reference.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace vecfd::sim {

class Vec {
 public:
  Vec() = default;
  explicit Vec(std::size_t n, double fill = 0.0) : v_(n, fill) {}

  int size() const { return static_cast<int>(v_.size()); }
  bool empty() const { return v_.empty(); }

  double& operator[](std::size_t i) {
    assert(i < v_.size());
    return v_[i];
  }
  double operator[](std::size_t i) const {
    assert(i < v_.size());
    return v_[i];
  }

  double* data() { return v_.data(); }
  const double* data() const { return v_.data(); }

  std::vector<double>& raw() { return v_; }
  const std::vector<double>& raw() const { return v_; }

 private:
  std::vector<double> v_;
};

}  // namespace vecfd::sim
