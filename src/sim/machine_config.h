// vecfd::sim — machine description.
//
// A MachineConfig captures the per-core parameters the paper reports in
// Table 2 plus the micro-architectural behaviours its analysis relies on:
// the FPU-lane count, vector-instruction startup, the FSM throughput quirk
// that makes vl=240 the sweet spot on RISC-V VEC (footnote 4 / §5), memory
// bandwidth in bytes/cycle, and the cache hierarchy.
#pragma once

#include <string>

#include "mem/memory_hierarchy.h"

namespace vecfd::sim {

struct MachineConfig {
  std::string name = "riscv-vec";
  double frequency_mhz = 50.0;

  // ---- vector datapath ----------------------------------------------------
  bool vector_enabled = true;
  int vlmax = 256;          ///< max double-precision elements per register
  int lanes = 8;            ///< FPUs operating in parallel

  /// The Vitruvius FSM issues element groups most efficiently when the
  /// vector length is a multiple of `lanes * fsm_group` (8·5 = 40 on
  /// RISC-V VEC).  Off-multiple lengths pay `fsm_penalty` on the per-chunk
  /// throughput.  Set `fsm_group = 1` to disable the quirk (other machines).
  int fsm_group = 5;
  double fsm_penalty = 1.07;

  double arith_startup = 4.0;  ///< decode/issue/dispatch cycles, arithmetic
  double mem_startup = 10.0;   ///< decode/issue/address-gen cycles, memory
  double div_factor = 8.0;     ///< per-chunk multiplier for vdiv/vsqrt
  double ctrl_factor = 0.5;    ///< per-chunk multiplier for control-lane ops

  // ---- memory system -------------------------------------------------------
  double bytes_per_cycle = 64.0;        ///< streaming bandwidth (Table 2)
  double indexed_elems_per_cycle = 2.0; ///< gather/scatter element rate
  double strided_elems_per_cycle = 4.0; ///< strided element rate

  /// Fraction of the cache-miss penalty exposed to a unit-stride vector
  /// stream (hardware overlaps outstanding line fills).  Gathers/scatters
  /// keep many fills in flight (miss_overlap_indexed); short strided
  /// accesses drain through the store buffer per element and expose more
  /// (miss_overlap_strided).
  double miss_overlap_unit = 0.25;
  double miss_overlap_indexed = 0.6;
  double miss_overlap_strided = 0.9;

  // ---- scalar core ----------------------------------------------------------
  double scalar_cpi = 1.0;       ///< base cycles per scalar instruction
  double scalar_mem_cpi = 1.0;   ///< base cycles per scalar load/store

  mem::HierarchyConfig memory;

  /// Effective vector length for a request of @p n elements.
  int clamp_vl(int n) const { return n < vlmax ? n : vlmax; }
};

}  // namespace vecfd::sim
