#include "sim/fault_injection.h"

#include <stdexcept>

namespace vecfd::sim {

namespace {

/// splitmix64 (Steele/Lea/Flood): the canonical seed-expansion mixer.  A
/// full-period bijection of the 64-bit state, so distinct draw indices
/// never collide and the fault stream is a pure function of the seed.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[noreturn]] void bad_spec(const std::string& token, const std::string& why) {
  throw std::invalid_argument("fault plan: '" + token + "': " + why);
}

FaultKind kind_from_string(const std::string& name, const std::string& token) {
  if (name == "breakdown") return FaultKind::kSolverBreakdown;
  if (name == "nan-rhs") return FaultKind::kNanRhs;
  if (name == "zero-diag") return FaultKind::kZeroDiagonal;
  if (name == "worker-death") return FaultKind::kWorkerDeath;
  bad_spec(token, "unknown fault kind '" + name +
                      "' (want breakdown, nan-rhs, zero-diag or "
                      "worker-death)");
}

/// Strict non-negative integer parse of a spec field.
int parse_index(const std::string& s, const std::string& token,
                const char* what) {
  if (s.empty()) bad_spec(token, std::string("missing ") + what);
  long v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      bad_spec(token, std::string("invalid ") + what + " '" + s +
                          "' (want a non-negative integer)");
    }
    v = v * 10 + (c - '0');
    if (v > 1'000'000'000L) bad_spec(token, std::string(what) + " too large");
  }
  return static_cast<int>(v);
}

std::uint64_t parse_u64(const std::string& s, const std::string& token,
                        const char* what) {
  if (s.empty()) bad_spec(token, std::string("missing ") + what);
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      bad_spec(token, std::string("invalid ") + what + " '" + s +
                          "' (want a non-negative integer)");
    }
    v = v * 10u + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) bad_spec(spec, "empty plan");

  if (spec.rfind("seed=", 0) == 0) {
    // "seed=<u64>[:faults=<n>]"
    const std::size_t colon = spec.find(':');
    const std::string seed_str = spec.substr(5, colon == std::string::npos
                                                    ? std::string::npos
                                                    : colon - 5);
    plan.seed_ = parse_u64(seed_str, spec, "seed");
    if (colon != std::string::npos) {
      const std::string rest = spec.substr(colon + 1);
      if (rest.rfind("faults=", 0) != 0) {
        bad_spec(spec, "expected 'faults=<n>' after the seed");
      }
      plan.seed_faults_ = parse_index(rest.substr(7), spec, "fault count");
      if (plan.seed_faults_ <= 0) {
        bad_spec(spec, "fault count must be positive");
      }
    }
    return plan;
  }

  // explicit entries: kind@point[.step] joined with ';'
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string entry =
        spec.substr(pos, semi == std::string::npos ? std::string::npos
                                                   : semi - pos);
    pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (entry.empty()) bad_spec(spec, "empty entry");

    const std::size_t at = entry.find('@');
    if (at == std::string::npos) {
      bad_spec(entry, "expected kind@point[.step]");
    }
    PlannedFault f;
    f.kind = kind_from_string(entry.substr(0, at), entry);
    const std::string loc = entry.substr(at + 1);
    const std::size_t dot = loc.find('.');
    f.point = parse_index(loc.substr(0, dot), entry, "point index");
    if (dot != std::string::npos) {
      f.step = parse_index(loc.substr(dot + 1), entry, "step index");
    }
    plan.faults_.push_back(f);
  }
  return plan;
}

void FaultPlan::materialize(int num_points, int steps) {
  if (!seed_.has_value()) return;
  if (num_points <= 0 || steps <= 0) {
    throw std::invalid_argument(
        "fault plan: materialize needs a positive campaign shape");
  }
  faults_.clear();
  faults_.reserve(static_cast<std::size_t>(seed_faults_));
  constexpr FaultKind kDrawableKinds[] = {
      FaultKind::kSolverBreakdown, FaultKind::kNanRhs,
      FaultKind::kZeroDiagonal, FaultKind::kWorkerDeath};
  for (int i = 0; i < seed_faults_; ++i) {
    const std::uint64_t h =
        splitmix64(*seed_ + static_cast<std::uint64_t>(i));
    PlannedFault f;
    f.kind = kDrawableKinds[h % 4u];
    f.point = static_cast<int>((h >> 8) %
                               static_cast<std::uint64_t>(num_points));
    f.step =
        static_cast<int>((h >> 40) % static_cast<std::uint64_t>(steps));
    faults_.push_back(f);
  }
  seed_.reset();
}

FaultSpec FaultPlan::spec_for(int point) const {
  if (seed_.has_value()) {
    throw std::logic_error(
        "fault plan: spec_for on an unmaterialized seeded plan (call "
        "materialize(num_points, steps) first)");
  }
  for (const PlannedFault& f : faults_) {
    if (f.point == point && f.kind != FaultKind::kWorkerDeath &&
        f.kind != FaultKind::kNone) {
      return FaultSpec{f.kind, f.step};
    }
  }
  return {};
}

bool FaultPlan::worker_death(int point) const {
  if (seed_.has_value()) {
    throw std::logic_error(
        "fault plan: worker_death on an unmaterialized seeded plan (call "
        "materialize(num_points, steps) first)");
  }
  for (const PlannedFault& f : faults_) {
    if (f.point == point && f.kind == FaultKind::kWorkerDeath) return true;
  }
  return false;
}

std::string FaultPlan::describe() const {
  if (seed_.has_value()) {
    return "seed=" + std::to_string(*seed_) +
           ":faults=" + std::to_string(seed_faults_);
  }
  std::string out;
  for (const PlannedFault& f : faults_) {
    if (!out.empty()) out += ';';
    out += to_string(f.kind);
    out += '@';
    out += std::to_string(f.point);
    if (f.kind != FaultKind::kWorkerDeath) {
      out += '.';
      out += std::to_string(f.step);
    }
  }
  return out;
}

}  // namespace vecfd::sim
