#include "sim/vpu.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace vecfd::sim {

Vpu::Vpu(MachineConfig cfg, int num_phases)
    : cfg_(std::move(cfg)),
      timing_(cfg_),
      mem_(cfg_.memory),
      profiler_(num_phases) {
  if (cfg_.vlmax <= 0 || cfg_.lanes <= 0) {
    throw std::invalid_argument("Vpu: vlmax and lanes must be positive");
  }
  vl_ = cfg_.vlmax;
}

void Vpu::reset() {
  total_ = Counters{};
  profiler_.reset();
  mem_.flush();
  vl_ = cfg_.vlmax;
}

void Vpu::record(InstrKind kind, double cycles, int vl_used) {
  total_.record(kind, cycles, static_cast<std::uint64_t>(vl_used));
  profiler_.phase(profiler_.current())
      .record(kind, cycles, static_cast<std::uint64_t>(vl_used));
  if (observer_ != nullptr) {
    observer_->on_instr(profiler_.current(), kind, vl_used, cycles);
  }
}

double Vpu::touch_range(const void* p, std::size_t bytes) {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  if (bytes == 0) return 0.0;
  const std::size_t line = cfg_.memory.l1.line_bytes;
  const std::uintptr_t mask = ~(static_cast<std::uintptr_t>(line) - 1);
  const std::uintptr_t first = addr & mask;
  const std::uintptr_t last = (addr + bytes - 1) & mask;
  double penalty = 0.0;
  Counters& ph = profiler_.phase(profiler_.current());
  for (std::uintptr_t a = first;; a += line) {
    const mem::AccessResult r = mem_.access(a);
    penalty += r.penalty;
    ++total_.l1_accesses;
    ++ph.l1_accesses;
    if (r.level > 1) {
      ++total_.l1_misses;
      ++ph.l1_misses;
    }
    if (r.level > 2) {
      ++total_.l2_misses;
      ++ph.l2_misses;
    }
    if (a == last) break;
  }
  return penalty;
}

double Vpu::touch_elem(const void* p) { return touch_range(p, 8); }

void Vpu::require_vector(const char* what) const {
  if (!cfg_.vector_enabled) {
    throw std::logic_error(std::string("Vpu: vector instruction '") + what +
                           "' issued on a scalar-only machine configuration");
  }
}

void Vpu::require_operands(const Vec& a, const char* what) const {
  if (a.empty()) {
    throw std::invalid_argument(std::string("Vpu: empty operand for '") +
                                what + "'");
  }
}

// ---------------------------------------------------------------- vconfig

int Vpu::set_vl(int n) {
  require_vector("vsetvl");
  if (n <= 0) throw std::invalid_argument("Vpu::set_vl: n must be positive");
  vl_ = cfg_.clamp_vl(n);
  record(InstrKind::kVConfig, timing_.vconfig_cycles(), 0);
  return vl_;
}

// ------------------------------------------------------------ vector memory

// Streaming (long unit-stride) accesses overlap outstanding line fills
// almost completely; short vectors behave like scalar accesses and expose
// the latency.  Interpolate between the two regimes with 1/vl scaling.
double Vpu::unit_overlap(int vl) const {
  const double scaled =
      cfg_.miss_overlap_unit * static_cast<double>(cfg_.vlmax) / vl;
  return scaled < cfg_.miss_overlap_indexed ? scaled
                                            : cfg_.miss_overlap_indexed;
}

Vec Vpu::vload(const double* p) {
  require_vector("vload");
  Vec r(vl_);
  for (int i = 0; i < vl_; ++i) r[i] = p[i];
  double cycles = timing_.vmem_unit_cycles(vl_);
  cycles += unit_overlap(vl_) * touch_range(p, 8u * vl_);
  record(InstrKind::kVMemUnit, cycles, vl_);
  return r;
}

Vec Vpu::vload_i32(const std::int32_t* p) {
  require_vector("vload_i32");
  Vec r(vl_);
  for (int i = 0; i < vl_; ++i) r[i] = static_cast<double>(p[i]);
  double cycles = timing_.vmem_unit_cycles(vl_);
  cycles += unit_overlap(vl_) * touch_range(p, 4u * vl_);
  record(InstrKind::kVMemUnit, cycles, vl_);
  return r;
}

Vec Vpu::vload_strided(const double* p, std::ptrdiff_t stride_elems) {
  require_vector("vload_strided");
  Vec r(vl_);
  double penalty = 0.0;
  for (int i = 0; i < vl_; ++i) {
    const double* q = p + stride_elems * i;
    r[i] = *q;
    penalty += touch_elem(q);
  }
  double cycles = timing_.vmem_strided_cycles(vl_);
  cycles += cfg_.miss_overlap_strided * penalty;
  record(InstrKind::kVMemStrided, cycles, vl_);
  return r;
}

Vec Vpu::vgather(const double* base, const Vec& idx) {
  require_vector("vgather");
  require_operands(idx, "vgather");
  const int n = idx.size();
  Vec r(n);
  double penalty = 0.0;
  const std::size_t line = cfg_.memory.l1.line_bytes;
  const std::uintptr_t mask = ~(static_cast<std::uintptr_t>(line) - 1);
  gather_lines_scratch_.clear();
  std::uint64_t pads = 0;
  for (int i = 0; i < n; ++i) {
    const std::ptrdiff_t k = static_cast<std::ptrdiff_t>(idx[i]);
    if (k < 0) {  // masked-off pad lane: +0.0, zero memory traffic
      r[i] = 0.0;
      ++pads;
      continue;
    }
    const double* q = base + k;
    r[i] = *q;
    penalty += touch_elem(q);
    gather_lines_scratch_.push_back(reinterpret_cast<std::uintptr_t>(q) &
                                    mask);
  }
  std::sort(gather_lines_scratch_.begin(), gather_lines_scratch_.end());
  const std::uint64_t lines = static_cast<std::uint64_t>(
      std::unique(gather_lines_scratch_.begin(), gather_lines_scratch_.end()) -
      gather_lines_scratch_.begin());
  const std::uint64_t lanes =
      static_cast<std::uint64_t>(n) - pads;
  Counters& ph = profiler_.phase(profiler_.current());
  total_.gather_lanes += lanes;
  ph.gather_lanes += lanes;
  total_.gather_lines_touched += lines;
  ph.gather_lines_touched += lines;
  total_.pad_lanes += pads;
  ph.pad_lanes += pads;
  double cycles = timing_.vmem_indexed_cycles(n);
  cycles += cfg_.miss_overlap_indexed * penalty;
  record(InstrKind::kVMemIndexed, cycles, n);
  return r;
}

void Vpu::vstore(double* p, const Vec& v) {
  require_vector("vstore");
  require_operands(v, "vstore");
  const int n = v.size();
  for (int i = 0; i < n; ++i) p[i] = v[i];
  double cycles = timing_.vmem_unit_cycles(n);
  cycles += unit_overlap(n) * touch_range(p, 8u * n);
  record(InstrKind::kVMemUnit, cycles, n);
}

void Vpu::vstore_strided(double* p, std::ptrdiff_t stride_elems,
                         const Vec& v) {
  require_vector("vstore_strided");
  require_operands(v, "vstore_strided");
  const int n = v.size();
  double penalty = 0.0;
  for (int i = 0; i < n; ++i) {
    double* q = p + stride_elems * i;
    *q = v[i];
    penalty += touch_elem(q);
  }
  double cycles = timing_.vmem_strided_cycles(n);
  cycles += cfg_.miss_overlap_strided * penalty;
  record(InstrKind::kVMemStrided, cycles, n);
}

void Vpu::vscatter(double* base, const Vec& idx, const Vec& v) {
  require_vector("vscatter");
  require_operands(v, "vscatter");
  if (idx.size() != v.size()) {
    throw std::invalid_argument("Vpu::vscatter: index/value length mismatch");
  }
  const int n = v.size();
  double penalty = 0.0;
  for (int i = 0; i < n; ++i) {
    double* q = base + static_cast<std::ptrdiff_t>(idx[i]);
    *q = v[i];
    penalty += touch_elem(q);
  }
  double cycles = timing_.vmem_indexed_cycles(n);
  cycles += cfg_.miss_overlap_indexed * penalty;
  record(InstrKind::kVMemIndexed, cycles, n);
}

// --------------------------------------------------------- vector arithmetic

namespace {
void check_same_size(const Vec& a, const Vec& b, const char* what) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string("Vpu: operand length mismatch in ") +
                                what);
  }
}
}  // namespace

Vec Vpu::vadd(const Vec& a, const Vec& b) {
  require_vector("vadd");
  check_same_size(a, b, "vadd");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = a[i] + b[i];
  record(InstrKind::kVArith, timing_.varith_cycles(n), n);
  total_.flops += n;
  profiler_.phase(profiler_.current()).flops += n;
  return r;
}

Vec Vpu::vsub(const Vec& a, const Vec& b) {
  require_vector("vsub");
  check_same_size(a, b, "vsub");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = a[i] - b[i];
  record(InstrKind::kVArith, timing_.varith_cycles(n), n);
  total_.flops += n;
  profiler_.phase(profiler_.current()).flops += n;
  return r;
}

Vec Vpu::vmul(const Vec& a, const Vec& b) {
  require_vector("vmul");
  check_same_size(a, b, "vmul");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = a[i] * b[i];
  record(InstrKind::kVArith, timing_.varith_cycles(n), n);
  total_.flops += n;
  profiler_.phase(profiler_.current()).flops += n;
  return r;
}

Vec Vpu::vdiv(const Vec& a, const Vec& b) {
  require_vector("vdiv");
  check_same_size(a, b, "vdiv");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = a[i] / b[i];
  record(InstrKind::kVArith, timing_.varith_cycles(n, ArithOp::kDivSqrt), n);
  total_.flops += n;
  profiler_.phase(profiler_.current()).flops += n;
  return r;
}

Vec Vpu::vfma(const Vec& a, const Vec& b, const Vec& c) {
  require_vector("vfma");
  check_same_size(a, b, "vfma");
  check_same_size(a, c, "vfma");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = a[i] * b[i] + c[i];
  record(InstrKind::kVArith, timing_.varith_cycles(n), n);
  total_.flops += 2u * n;
  profiler_.phase(profiler_.current()).flops += 2u * n;
  return r;
}

Vec Vpu::vfnma(const Vec& a, const Vec& b, const Vec& c) {
  require_vector("vfnma");
  check_same_size(a, b, "vfnma");
  check_same_size(a, c, "vfnma");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = c[i] - a[i] * b[i];
  record(InstrKind::kVArith, timing_.varith_cycles(n), n);
  total_.flops += 2u * n;
  profiler_.phase(profiler_.current()).flops += 2u * n;
  return r;
}

Vec Vpu::vsqrt(const Vec& a) {
  require_vector("vsqrt");
  require_operands(a, "vsqrt");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = std::sqrt(a[i]);
  record(InstrKind::kVArith, timing_.varith_cycles(n, ArithOp::kDivSqrt), n);
  total_.flops += n;
  profiler_.phase(profiler_.current()).flops += n;
  return r;
}

Vec Vpu::vcbrt(const Vec& a) {
  require_vector("vcbrt");
  require_operands(a, "vcbrt");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = std::cbrt(a[i]);
  record(InstrKind::kVArith, timing_.varith_cycles(n, ArithOp::kDivSqrt), n);
  total_.flops += n;
  profiler_.phase(profiler_.current()).flops += n;
  return r;
}

Vec Vpu::vabs(const Vec& a) {
  require_vector("vabs");
  require_operands(a, "vabs");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = std::fabs(a[i]);
  record(InstrKind::kVArith, timing_.varith_cycles(n), n);
  total_.flops += n;
  profiler_.phase(profiler_.current()).flops += n;
  return r;
}

Vec Vpu::vmax(const Vec& a, const Vec& b) {
  require_vector("vmax");
  check_same_size(a, b, "vmax");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = a[i] > b[i] ? a[i] : b[i];
  record(InstrKind::kVArith, timing_.varith_cycles(n), n);
  total_.flops += n;
  profiler_.phase(profiler_.current()).flops += n;
  return r;
}

Vec Vpu::vadd_s(const Vec& a, double s) {
  require_vector("vadd_s");
  require_operands(a, "vadd_s");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = a[i] + s;
  record(InstrKind::kVArith, timing_.varith_cycles(n), n);
  total_.flops += n;
  profiler_.phase(profiler_.current()).flops += n;
  return r;
}

Vec Vpu::vmul_s(const Vec& a, double s) {
  require_vector("vmul_s");
  require_operands(a, "vmul_s");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = a[i] * s;
  record(InstrKind::kVArith, timing_.varith_cycles(n), n);
  total_.flops += n;
  profiler_.phase(profiler_.current()).flops += n;
  return r;
}

Vec Vpu::vfma_s(const Vec& a, double s, const Vec& c) {
  require_vector("vfma_s");
  check_same_size(a, c, "vfma_s");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = a[i] * s + c[i];
  record(InstrKind::kVArith, timing_.varith_cycles(n), n);
  total_.flops += 2u * n;
  profiler_.phase(profiler_.current()).flops += 2u * n;
  return r;
}

Vec Vpu::viadd_s(const Vec& a, double s) {
  require_vector("viadd_s");
  require_operands(a, "viadd_s");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = a[i] + s;
  record(InstrKind::kVArith, timing_.varith_cycles(n), n);
  return r;
}

Vec Vpu::vimul_s(const Vec& a, double s) {
  require_vector("vimul_s");
  require_operands(a, "vimul_s");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = a[i] * s;
  record(InstrKind::kVArith, timing_.varith_cycles(n), n);
  return r;
}

double Vpu::vredsum(const Vec& a) {
  require_vector("vredsum");
  require_operands(a, "vredsum");
  const int n = a.size();
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += a[i];
  record(InstrKind::kVArith, timing_.varith_cycles(n, ArithOp::kReduce), n);
  total_.flops += n;
  profiler_.phase(profiler_.current()).flops += n;
  return s;
}

double Vpu::vredmax(const Vec& a) {
  require_vector("vredmax");
  require_operands(a, "vredmax");
  const int n = a.size();
  // NaN-propagating max: a poisoned operand must not yield a clean scale
  // (the scaled norm would otherwise report 0 for an all-NaN vector).
  double m = a[0];
  for (int i = 1; i < n; ++i) {
    const double v = a[i];
    m = (v > m || v != v) ? v : m;
  }
  record(InstrKind::kVArith, timing_.varith_cycles(n, ArithOp::kReduce), n);
  total_.flops += n;
  profiler_.phase(profiler_.current()).flops += n;
  return m;
}

// --------------------------------------------------------------- control lane

Vec Vpu::vsplat(double s) {
  require_vector("vsplat");
  Vec r(vl_, s);
  record(InstrKind::kVCtrl, timing_.vctrl_cycles(vl_), vl_);
  return r;
}

Vec Vpu::viota() {
  require_vector("viota");
  Vec r(vl_);
  for (int i = 0; i < vl_; ++i) r[i] = static_cast<double>(i);
  record(InstrKind::kVCtrl, timing_.vctrl_cycles(vl_), vl_);
  return r;
}

Vec Vpu::vmerge(const Vec& mask, const Vec& a, const Vec& b) {
  require_vector("vmerge");
  check_same_size(mask, a, "vmerge");
  check_same_size(mask, b, "vmerge");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = mask[i] != 0.0 ? a[i] : b[i];
  record(InstrKind::kVCtrl, timing_.vctrl_cycles(n), n);
  return r;
}

Vec Vpu::vge_s(const Vec& a, double s) {
  require_vector("vge_s");
  require_operands(a, "vge_s");
  const int n = a.size();
  Vec r(n);
  for (int i = 0; i < n; ++i) r[i] = a[i] >= s ? 1.0 : 0.0;
  record(InstrKind::kVCtrl, timing_.vctrl_cycles(n), n);
  return r;
}

// ---------------------------------------------------------------- scalar core

double Vpu::sload(const double* p) {
  const double penalty = touch_elem(p);
  record(InstrKind::kScalarMem, timing_.scalar_mem_cycles() + penalty, 0);
  return *p;
}

std::int32_t Vpu::sload_i32(const std::int32_t* p) {
  const double penalty = touch_range(p, 4);
  record(InstrKind::kScalarMem, timing_.scalar_mem_cycles() + penalty, 0);
  return *p;
}

void Vpu::sstore(double* p, double v) {
  *p = v;
  const double penalty = touch_elem(p);
  record(InstrKind::kScalarMem, timing_.scalar_mem_cycles() + penalty, 0);
}

void Vpu::sstore_i32(std::int32_t* p, std::int32_t v) {
  *p = v;
  const double penalty = touch_range(p, 4);
  record(InstrKind::kScalarMem, timing_.scalar_mem_cycles() + penalty, 0);
}

void Vpu::note_coalesced_lanes(std::uint64_t n) {
  total_.coalesced_lanes += n;
  profiler_.phase(profiler_.current()).coalesced_lanes += n;
}

void Vpu::note_pad_lanes(std::uint64_t n) {
  total_.pad_lanes += n;
  profiler_.phase(profiler_.current()).pad_lanes += n;
}

void Vpu::note_halo_lines_sent(std::uint64_t n) {
  total_.halo_lines_sent += n;
  profiler_.phase(profiler_.current()).halo_lines_sent += n;
}

void Vpu::note_halo_lines_recv(std::uint64_t n) {
  total_.halo_lines_recv += n;
  profiler_.phase(profiler_.current()).halo_lines_recv += n;
}

void Vpu::note_halo_messages(std::uint64_t n) {
  total_.halo_messages += n;
  profiler_.phase(profiler_.current()).halo_messages += n;
}

void Vpu::sarith(std::uint64_t n) {
  if (n == 0) return;
  Counters& ph = profiler_.phase(profiler_.current());
  const double cycles = timing_.scalar_alu_cycles() * static_cast<double>(n);
  total_.scalar_alu_instrs += n;
  ph.scalar_alu_instrs += n;
  total_.scalar_cycles += cycles;
  ph.scalar_cycles += cycles;
}

double Vpu::sadd(double a, double b) {
  record(InstrKind::kScalarAlu, timing_.scalar_alu_cycles(), 0);
  total_.flops += 1;
  profiler_.phase(profiler_.current()).flops += 1;
  return a + b;
}

double Vpu::ssub(double a, double b) {
  record(InstrKind::kScalarAlu, timing_.scalar_alu_cycles(), 0);
  total_.flops += 1;
  profiler_.phase(profiler_.current()).flops += 1;
  return a - b;
}

double Vpu::smul(double a, double b) {
  record(InstrKind::kScalarAlu, timing_.scalar_alu_cycles(), 0);
  total_.flops += 1;
  profiler_.phase(profiler_.current()).flops += 1;
  return a * b;
}

double Vpu::sdiv(double a, double b) {
  // scalar FP divide: several cycles even on the in-order core
  record(InstrKind::kScalarAlu, 4.0 * timing_.scalar_alu_cycles(), 0);
  total_.flops += 1;
  profiler_.phase(profiler_.current()).flops += 1;
  return a / b;
}

double Vpu::sfma(double a, double b, double c) {
  record(InstrKind::kScalarAlu, timing_.scalar_alu_cycles(), 0);
  total_.flops += 2;
  profiler_.phase(profiler_.current()).flops += 2;
  return a * b + c;
}

double Vpu::sfnma(double a, double b, double c) {
  record(InstrKind::kScalarAlu, timing_.scalar_alu_cycles(), 0);
  total_.flops += 2;
  profiler_.phase(profiler_.current()).flops += 2;
  return c - a * b;
}

double Vpu::ssqrt(double a) {
  record(InstrKind::kScalarAlu, 4.0 * timing_.scalar_alu_cycles(), 0);
  total_.flops += 1;
  profiler_.phase(profiler_.current()).flops += 1;
  return std::sqrt(a);
}

double Vpu::scbrt(double a) {
  record(InstrKind::kScalarAlu, 4.0 * timing_.scalar_alu_cycles(), 0);
  total_.flops += 1;
  profiler_.phase(profiler_.current()).flops += 1;
  return std::cbrt(a);
}

}  // namespace vecfd::sim
