// vecfd::sim — instruction taxonomy (paper Figure 1).
//
// Executed instructions are split into "Scalar", "Vector configuration" and
// "Vector" classes; vector instructions subdivide into arithmetic, memory
// (unit-stride / strided / indexed) and control-lane instructions.
#pragma once

#include <string_view>

namespace vecfd::sim {

enum class InstrKind {
  kScalarAlu,     ///< scalar integer/FP arithmetic, branches, address calc
  kScalarMem,     ///< scalar load/store
  kVConfig,       ///< vsetvl-style vector-length/element-width configuration
  kVArith,        ///< vector arithmetic (add/mul/fma/div/sqrt/reductions)
  kVMemUnit,      ///< unit-stride vector load/store
  kVMemStrided,   ///< constant-stride vector load/store
  kVMemIndexed,   ///< indexed (gather/scatter) vector load/store
  kVCtrl,         ///< control-lane: broadcasts, moves, merges, slides
};

/// True for the three vector-memory subclasses.
constexpr bool is_vector_memory(InstrKind k) {
  return k == InstrKind::kVMemUnit || k == InstrKind::kVMemStrided ||
         k == InstrKind::kVMemIndexed;
}

/// True for every instruction executed on the vector processing unit
/// (the paper's "Vector" box: arithmetic + memory + control lane).
constexpr bool is_vector(InstrKind k) {
  return k == InstrKind::kVArith || is_vector_memory(k) ||
         k == InstrKind::kVCtrl;
}

constexpr std::string_view to_string(InstrKind k) {
  switch (k) {
    case InstrKind::kScalarAlu:   return "scalar-alu";
    case InstrKind::kScalarMem:   return "scalar-mem";
    case InstrKind::kVConfig:     return "vconfig";
    case InstrKind::kVArith:      return "varith";
    case InstrKind::kVMemUnit:    return "vmem-unit";
    case InstrKind::kVMemStrided: return "vmem-strided";
    case InstrKind::kVMemIndexed: return "vmem-indexed";
    case InstrKind::kVCtrl:       return "vctrl";
  }
  return "unknown";
}

}  // namespace vecfd::sim
