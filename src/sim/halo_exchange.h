// vecfd::sim — the counted ghost-transfer model for domain-decomposition
// sharding (DESIGN.md §9).
//
// A sharded run gives every subdomain its own Vpu and memory hierarchy;
// the values a shard reads but does not own (the overlap-1 halo) must be
// refreshed from their owners before every operator application.  This
// class is the ONLY sanctioned way to touch those ghost slots inside a
// measured region (vecfd-lint rule `shard-exchange`, same hazard class as
// `measured-alloc`): it performs the host-side copies and prices the
// transfer through the counter registry instead of through instructions —
//
//   halo_lines_sent  on the OWNING shard's Vpu: distinct cache lines of
//                    the owner's local vector read to serve the transfer
//                    (the scattered-read side of the exchange),
//   halo_lines_recv  on the RECEIVING shard's Vpu: distinct cache lines
//                    of the contiguous ghost-slot range written,
//   halo_messages    on the receiver: one per (receiver, owner) pair with
//                    a non-empty block, per exchange.
//
// Deliberately NO cycles are charged: the prototype models communication
// volume (the surface term of the surface-to-volume trade the partitioner
// optimizes), not an interconnect's latency/bandwidth curve.  Line counts
// are derived from element INDICES at the registry line size, never from
// host addresses, so they are reproducible across runs and allocators.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/vpu.h"

namespace vecfd::sim {

/// One point-to-point transfer: ghost slots [dst_begin, dst_begin+count)
/// of the receiving shard's local vector are filled from the OWNED prefix
/// of shard `src_shard`'s local vector at indices `src_local` (ascending).
struct HaloBlock {
  int src_shard = 0;
  int dst_begin = 0;
  std::vector<std::int32_t> src_local;
};

class HaloExchange {
 public:
  /// @p blocks_per_shard[p] lists the transfers that fill shard p's ghost
  /// slots; @p line_bytes is the cache-line size the volume model uses
  /// (the shard memory hierarchy's L1 line).
  HaloExchange(std::vector<std::vector<HaloBlock>> blocks_per_shard,
               int line_bytes);

  int shards() const { return static_cast<int>(plan_.size()); }
  const std::vector<HaloBlock>& blocks(int shard) const {
    return plan_[static_cast<std::size_t>(shard)];
  }

  /// Refresh every ghost slot: locals[p] points at shard p's local vector
  /// (owned prefix followed by ghost slots), vpus[p] is its Vpu.  Copies
  /// run host-side; the three halo counters are recorded on the owning /
  /// receiving Vpus as documented above.
  void exchange(std::span<Vpu* const> vpus,
                std::span<double* const> locals) const;

  /// Distinct-line count of one ascending index list at this exchange's
  /// line size (exposed for the Advisor and tests).
  std::uint64_t lines_of(std::span<const std::int32_t> ascending) const;

 private:
  std::vector<std::vector<HaloBlock>> plan_;
  int doubles_per_line_ = 8;
};

}  // namespace vecfd::sim
