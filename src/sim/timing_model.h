// vecfd::sim — instruction latency model.
//
// Anchors from the paper:
//  * a vector FMA takes ~32 cycles at vl = 256 on RISC-V VEC (8 lanes), and
//    fewer cycles at shorter vector lengths (§4, Table 5 discussion);
//  * vector lengths that are multiples of 40 (8 lanes × 5 FSM groups) have
//    higher element throughput (footnote 4, §5) — the reason
//    VECTOR_SIZE = 240 beats 256;
//  * an FMA "graduates" in 8 cycles on NEC SX-Aurora (§2.4), i.e. the same
//    `ceil(vl / lanes)` law with 32 effective FMA slots.
#pragma once

#include <cstdint>

#include "sim/machine_config.h"

namespace vecfd::sim {

/// Cost multipliers distinguishing arithmetic flavours.
enum class ArithOp {
  kSimple,   ///< add/sub/mul/fma/min/max/abs — fully pipelined
  kDivSqrt,  ///< iterative: pays MachineConfig::div_factor per chunk
  kReduce,   ///< log-tree reduction across lanes
};

class TimingModel {
 public:
  /// Keeps a pointer to @p cfg, which must outlive the model.  The rvalue
  /// overload is deleted so a temporary MachineConfig (e.g.
  /// `TimingModel(riscv_vec())`) cannot silently dangle — ASan caught
  /// exactly that pattern in the test suite.
  explicit TimingModel(const MachineConfig& cfg) : cfg_(&cfg) {}
  explicit TimingModel(MachineConfig&&) = delete;

  /// Throughput multiplier of the lane-feeding FSM for a given vl.
  /// 1.0 when vl is a multiple of lanes*fsm_group (or the quirk is off).
  double fsm_factor(int vl) const;

  /// Execution cycles of one vector arithmetic instruction of length @p vl.
  double varith_cycles(int vl, ArithOp op = ArithOp::kSimple) const;

  /// Execution cycles of one control-lane instruction (broadcast/move/...).
  double vctrl_cycles(int vl) const;

  /// Base (cache-penalty-free) cycles of one vector memory instruction.
  double vmem_unit_cycles(int vl) const;
  double vmem_strided_cycles(int vl) const;
  double vmem_indexed_cycles(int vl) const;

  /// Base cycles of scalar instructions.
  double scalar_alu_cycles() const { return cfg_->scalar_cpi; }
  double scalar_mem_cycles() const { return cfg_->scalar_mem_cpi; }
  double vconfig_cycles() const { return cfg_->scalar_cpi; }

  const MachineConfig& config() const { return *cfg_; }

 private:
  double chunks(int vl) const;  // ceil(vl / lanes) · fsm_factor(vl)

  const MachineConfig* cfg_;
};

}  // namespace vecfd::sim
