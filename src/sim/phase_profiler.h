// vecfd::sim — per-phase counter attribution (Extrae-style regions).
//
// The mini-app is instrumented into 8 phases (§2.3); every counter update
// is attributed both to the run total and to the currently open phase, so
// per-phase metrics (Tables 3–5, Figures 4, 8–10) fall out as plain reads.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/counters.h"

namespace vecfd::sim {

/// Default phase-id range of a fresh profiler / Vpu: the mini-app's eight
/// assembly phases plus the solve-stage phases of the transient loop —
/// momentum BiCGStab (9), pressure-Poisson CG (10) and the BLAS-1 velocity
/// correction (11); see miniapp::kSolvePhase et al.
inline constexpr int kDefaultNumPhases = 11;

class PhaseProfiler {
 public:
  /// @param num_phases phase ids are 1..num_phases; 0 means "outside".
  explicit PhaseProfiler(int num_phases = kDefaultNumPhases)
      : phases_(static_cast<std::size_t>(num_phases) + 1) {}

  int num_phases() const { return static_cast<int>(phases_.size()) - 1; }

  void begin(int phase) {
    if (phase < 1 || phase > num_phases()) {
      throw std::out_of_range("PhaseProfiler::begin: bad phase id " +
                              std::to_string(phase));
    }
    if (current_ != 0) {
      throw std::logic_error("PhaseProfiler::begin: phase " +
                             std::to_string(current_) + " still open");
    }
    current_ = phase;
  }

  void end(int phase) {
    if (phase != current_) {
      throw std::logic_error("PhaseProfiler::end: phase " +
                             std::to_string(phase) + " is not open");
    }
    current_ = 0;
  }

  int current() const { return current_; }

  /// Counters attributed to @p phase (0 = outside any phase).
  const Counters& phase(int p) const { return phases_.at(p); }
  Counters& phase(int p) { return phases_.at(p); }

  /// Sum over all phases including "outside".
  Counters total() const {
    Counters t;
    for (const Counters& c : phases_) t += c;
    return t;
  }

  void reset() {
    for (Counters& c : phases_) c = Counters{};
    current_ = 0;
  }

 private:
  std::vector<Counters> phases_;
  int current_ = 0;
};

/// RAII phase region.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler& prof, int phase) : prof_(prof), phase_(phase) {
    prof_.begin(phase_);
  }
  ~ScopedPhase() { prof_.end(phase_); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler& prof_;
  int phase_;
};

}  // namespace vecfd::sim
