// vecfd::sim — the long-vector machine.
//
// A Vpu executes kernels written against an explicit scalar/vector
// instruction API.  Every call does two things at once:
//   1. performs the real double-precision computation on real host memory
//      (so results are exact and testable against a golden reference), and
//   2. charges cycles and updates hardware counters according to the
//      TimingModel and the cache hierarchy — reproducing the
//      counter-based analysis the paper performs with PAPI/Vehave.
//
// The instruction vocabulary follows the RISC-V vector extension subset the
// paper's kernels exercise: vsetvl, unit-stride / strided / indexed loads
// and stores, elementwise arithmetic (incl. FMA, div, sqrt), reductions,
// broadcasts and merges, plus the scalar core.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/memory_hierarchy.h"
#include "sim/counters.h"
#include "sim/machine_config.h"
#include "sim/phase_profiler.h"
#include "sim/timing_model.h"
#include "sim/vec.h"

namespace vecfd::sim {

/// Observer hook for per-instruction tracing (implemented by
/// vecfd::trace::VehaveTrace; kept abstract here to avoid a cycle).
class InstrObserver {
 public:
  virtual ~InstrObserver() = default;
  virtual void on_instr(int phase, InstrKind kind, int vl, double cycles) = 0;
};

class Vpu {
 public:
  explicit Vpu(MachineConfig cfg, int num_phases = kDefaultNumPhases);

  // ---- configuration & state ------------------------------------------
  const MachineConfig& config() const { return cfg_; }
  const TimingModel& timing() const { return timing_; }
  mem::MemoryHierarchy& memory() { return mem_; }
  const mem::MemoryHierarchy& memory() const { return mem_; }
  PhaseProfiler& profiler() { return profiler_; }
  const PhaseProfiler& profiler() const { return profiler_; }
  const Counters& counters() const { return total_; }

  void set_observer(InstrObserver* obs) { observer_ = obs; }

  /// Reset counters, phases and caches for an independent measurement.
  void reset();

  /// Wall-clock seconds implied by the accumulated cycles at the modelled
  /// core frequency.
  double seconds() const {
    return total_.total_cycles() / (cfg_.frequency_mhz * 1e6);
  }

  // ---- vector configuration -------------------------------------------
  /// vsetvl: request @p n elements; the granted vl is min(n, vlmax).
  int set_vl(int n);
  int vl() const { return vl_; }
  int vlmax() const { return cfg_.vlmax; }

  // ---- vector memory -----------------------------------------------------
  Vec vload(const double* p);
  Vec vload_strided(const double* p, std::ptrdiff_t stride_elems);
  /// Unit-stride load of 32-bit indices (values returned widened to double).
  Vec vload_i32(const std::int32_t* p);
  /// Indexed load of base[idx[i]].  A NEGATIVE index is a masked-off lane
  /// (the storage-format pad convention of solver ELL/SELL mirrors): the
  /// lane reads +0.0 and generates no memory traffic, exactly like a
  /// mask-disabled element of a real vluxei — it still occupies its issue
  /// slot, so the instruction's cycle law is unchanged.  Real lanes are
  /// accounted in `gather_lanes` and the distinct cache lines they touch in
  /// `gather_lines_touched`; masked lanes count into `pad_lanes`.
  Vec vgather(const double* base, const Vec& idx);
  void vstore(double* p, const Vec& v);
  void vstore_strided(double* p, std::ptrdiff_t stride_elems, const Vec& v);
  void vscatter(double* base, const Vec& idx, const Vec& v);

  // ---- vector arithmetic (elementwise over the operand length) ---------
  Vec vadd(const Vec& a, const Vec& b);
  Vec vsub(const Vec& a, const Vec& b);
  Vec vmul(const Vec& a, const Vec& b);
  Vec vdiv(const Vec& a, const Vec& b);
  Vec vfma(const Vec& a, const Vec& b, const Vec& c);   ///< a*b + c
  Vec vfnma(const Vec& a, const Vec& b, const Vec& c);  ///< c - a*b (vfnmsac)
  Vec vsqrt(const Vec& a);
  Vec vcbrt(const Vec& a);  ///< vectorized libm cbrt (EPI vector-math call)
  Vec vabs(const Vec& a);
  Vec vmax(const Vec& a, const Vec& b);

  // vector-scalar forms (vfadd.vf / vfmul.vf / vfmacc.vf ...)
  Vec vadd_s(const Vec& a, double s);
  Vec vmul_s(const Vec& a, double s);
  Vec vfma_s(const Vec& a, double s, const Vec& c);  ///< a*s + c

  // integer-flavoured vector arithmetic for index computation (no FLOPs)
  Vec viadd_s(const Vec& a, double s);
  Vec vimul_s(const Vec& a, double s);

  /// Ordered sum reduction (vfredsum); result returned to the scalar core.
  double vredsum(const Vec& a);

  /// Max reduction (vfredmax); result returned to the scalar core.  NaN
  /// operands propagate to the result.  Used by the overflow-safe scaled
  /// norm of solver/vkernels.h.
  double vredmax(const Vec& a);

  // ---- control-lane instructions -------------------------------------------
  Vec vsplat(double s);               ///< broadcast (vmv.v.f)
  Vec viota();                        ///< 0,1,2,...,vl-1 (viota.m)
  Vec vmerge(const Vec& mask, const Vec& a, const Vec& b);  ///< mask? a : b
  Vec vge_s(const Vec& a, double s);  ///< mask: a[i] >= s ? 1 : 0

  // ---- scalar core ------------------------------------------------------------
  double sload(const double* p);
  std::int32_t sload_i32(const std::int32_t* p);
  void sstore(double* p, double v);
  void sstore_i32(std::int32_t* p, std::int32_t v);

  /// Count @p n generic scalar ALU instructions (loop control, addressing,
  /// comparisons) without an associated data value.
  void sarith(std::uint64_t n = 1);

  // ---- kernel annotations (no instruction issued) ----------------------
  /// Lanes whose x-gather was served by the coalescing fast path: the SpMV
  /// kernel detected a contiguous column run at assembly time and issued a
  /// unit-stride vload (already counted as such) in place of the vgather.
  /// Keeps the gathered/coalesced/pad lane taxonomy complete in the CSV.
  void note_coalesced_lanes(std::uint64_t n);
  /// Pad lanes skipped by a SCALAR SpMV fallback (vector pads are counted
  /// inside vgather itself).
  void note_pad_lanes(std::uint64_t n);
  /// Distinct owner cache lines read to serve a ghost transfer out of this
  /// shard (sim::HaloExchange on the owning shard's Vpu).
  void note_halo_lines_sent(std::uint64_t n);
  /// Distinct ghost-slot cache lines written into this shard's local
  /// vectors by a ghost transfer (HaloExchange on the receiving Vpu).
  void note_halo_lines_recv(std::uint64_t n);
  /// Point-to-point ghost-exchange messages received by this shard.
  void note_halo_messages(std::uint64_t n);

  // convenience scalar FP helpers: compute, count one instruction + FLOPs
  double sadd(double a, double b);
  double ssub(double a, double b);
  double smul(double a, double b);
  double sdiv(double a, double b);
  double sfma(double a, double b, double c);
  double sfnma(double a, double b, double c);  ///< c - a*b
  double ssqrt(double a);
  double scbrt(double a);

 private:
  Vec make_result(std::size_t n) const { return Vec(n); }

  void record(InstrKind kind, double cycles, int vl_used);

  /// Touch whole lines of [addr, addr+bytes); returns cycle penalty and
  /// updates cache counters.
  double touch_range(const void* p, std::size_t bytes);
  /// Touch the single line containing an 8-byte element.
  double touch_elem(const void* p);

  void require_vector(const char* what) const;
  void require_operands(const Vec& a, const char* what) const;

  /// Miss-latency exposure of a unit-stride access of length @p vl.
  double unit_overlap(int vl) const;

  MachineConfig cfg_;
  TimingModel timing_;
  mem::MemoryHierarchy mem_;
  PhaseProfiler profiler_;
  Counters total_;
  InstrObserver* observer_ = nullptr;
  int vl_ = 0;
  /// Scratch for the per-gather distinct-line count (host-side only; never
  /// touched by the simulated memory hierarchy).
  std::vector<std::uintptr_t> gather_lines_scratch_;
};

}  // namespace vecfd::sim
