// vecfd::compiler — rule-based model of the EPI LLVM auto-vectorizer.
//
// Given a LoopInfo and a machine, `analyze()` reproduces the decisions the
// paper observes (Table 4 and the §4 narrative) and emits LLVM-style
// remarks, so tooling built on top (the co-design Advisor, the benches) can
// explain *why* a phase stayed scalar.
#pragma once

#include <string>
#include <vector>

#include "compiler/loop_info.h"
#include "sim/machine_config.h"

namespace vecfd::compiler {

/// Outcome of vectorization analysis for one loop.
struct Decision {
  bool vectorize = false;
  int vl = 0;           ///< vector length the emitted code requests per strip
  std::string remark;   ///< human-readable vectorization remark
};

class VectorizationModel {
 public:
  /// @param machine   target machine (vlmax bounds the granted vl)
  /// @param enabled   corresponds to compiling with the auto-vectorizer on
  ///                  (-mepi ... in Table 1); when false every loop stays
  ///                  scalar, which is the paper's baseline build.
  explicit VectorizationModel(const sim::MachineConfig& machine,
                              bool enabled = true);

  /// Analyze a single candidate loop.
  Decision analyze(const LoopInfo& loop) const;

  /// Cost-model profitability: the minimum trip count for which
  /// vectorization is considered profitable given the body's pattern and
  /// stream count.  Exposed for tests and the Advisor.
  static int min_profitable_trip(AccessPattern pattern, int memory_streams);

  bool enabled() const { return enabled_; }
  const sim::MachineConfig& machine() const { return *machine_; }

 private:
  const sim::MachineConfig* machine_;
  bool enabled_;
};

/// Convenience: analyze a set of loops, returning remarks for reporting
/// (mirrors `-Rpass=loop-vectorize` output the paper inspected).
std::vector<std::string> remarks(const VectorizationModel& model,
                                 const std::vector<LoopInfo>& loops);

}  // namespace vecfd::compiler
