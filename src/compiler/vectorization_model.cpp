#include "compiler/vectorization_model.h"

#include <algorithm>
#include <stdexcept>

namespace vecfd::compiler {

VectorizationModel::VectorizationModel(const sim::MachineConfig& machine,
                                       bool enabled)
    : machine_(&machine), enabled_(enabled && machine.vector_enabled) {}

int VectorizationModel::min_profitable_trip(AccessPattern pattern,
                                            int memory_streams) {
  int base = 0;
  switch (pattern) {
    case AccessPattern::kContiguous: base = 4; break;
    case AccessPattern::kStrided:    base = 8; break;
    case AccessPattern::kIndexed:    base = 16; break;
  }
  // Bodies with many interleaved streams need longer trips to amortize the
  // wider register/setup footprint (LLVM's cost model behaves similarly;
  // the thresholds reproduce the Table 4 pattern: only the lean loops of
  // phases 3/6/7 vectorize at VECTOR_SIZE = 16, everything profitable by
  // 64, and VEC2's trip-4 dof loop passes the contiguous threshold).
  int mult = 1;
  if (memory_streams > 8) {
    mult = 8;
  } else if (memory_streams > 4) {
    mult = 2;
  }
  return base * mult;
}

Decision VectorizationModel::analyze(const LoopInfo& loop) const {
  if (loop.trip_count <= 0) {
    throw std::invalid_argument("VectorizationModel: loop '" + loop.id +
                                "' has non-positive trip count");
  }
  Decision d;
  if (!enabled_) {
    d.remark = "loop not vectorized: auto-vectorization disabled "
               "(scalar build)";
    return d;
  }
  if (!loop.bound_is_compile_time_constant) {
    // §4: "the compiler is fetching, from memory, the VECTOR_DIM parameter
    // each iteration" — the bound is opaque, the loop stays scalar.
    d.remark = "loop not vectorized: trip count is not a compile-time "
               "constant (bound re-loaded from memory every iteration)";
    return d;
  }
  if (loop.may_alias_stores) {
    d.remark = "loop not vectorized: cannot prove indexed stores are "
               "non-aliasing (runtime checks not emitted for scatter)";
    return d;
  }
  if (loop.fused_with_nonvectorizable) {
    // §4: vector code was emitted for work B, but because it shares the
    // outer loop with non-vectorizable work A the runtime picks the scalar
    // version.  Observable effect: the loop executes scalar.
    d.remark = "loop not vectorized at runtime: vectorizable body is fused "
               "with a non-vectorizable region in the same outer loop "
               "(consider loop fission)";
    return d;
  }
  const int threshold = min_profitable_trip(loop.pattern,
                                            loop.memory_streams);
  if (loop.trip_count < threshold) {
    d.remark = "loop not vectorized: cost model found trip count " +
               std::to_string(loop.trip_count) +
               " unprofitable (needs >= " + std::to_string(threshold) + ")";
    return d;
  }
  d.vectorize = true;
  d.vl = std::min(loop.trip_count, machine_->vlmax);
  d.remark = "vectorized loop (vl=" + std::to_string(d.vl) + ", trip=" +
             std::to_string(loop.trip_count) + ")";
  return d;
}

std::vector<std::string> remarks(const VectorizationModel& model,
                                 const std::vector<LoopInfo>& loops) {
  std::vector<std::string> out;
  out.reserve(loops.size());
  for (const LoopInfo& l : loops) {
    out.push_back(l.id + ": " + model.analyze(l).remark);
  }
  return out;
}

}  // namespace vecfd::compiler
