// vecfd::compiler — source-level loop-nest description.
//
// The co-design loop of the paper revolves around *why* the LLVM-based EPI
// auto-vectorizer does or does not vectorize a loop: runtime-reloaded trip
// counts (phase 2), non-vectorizable work fused in the same outer loop
// (phase 1), unprovable aliasing of indexed stores (phase 8), and the cost
// model's profitability threshold.  A LoopInfo captures exactly the
// properties those decisions depend on.
#pragma once

#include <string>

namespace vecfd::compiler {

/// Dominant memory-access pattern of the candidate loop body.
enum class AccessPattern {
  kContiguous,  ///< unit-stride over the induction variable
  kStrided,     ///< constant non-unit stride
  kIndexed,     ///< gather/scatter through an index array
};

struct LoopInfo {
  std::string id;  ///< diagnostic label, e.g. "phase2/gather-dofs"

  /// Trip count of the loop the vectorizer would target (the innermost one).
  int trip_count = 0;

  /// Whether the bound is visible to the compiler as a constant.  The paper's
  /// phase 2 was blocked because VECTOR_DIM was a dummy argument re-fetched
  /// from memory every iteration (§4); declaring it compile-time constant is
  /// the VEC2 change.
  bool bound_is_compile_time_constant = true;

  /// Access pattern of the body; drives the profitability threshold and the
  /// kind of memory instructions emitted.
  AccessPattern pattern = AccessPattern::kContiguous;

  /// Number of distinct memory streams (arrays) the body touches.  Complex
  /// bodies need longer trips to amortize vector setup in the cost model.
  int memory_streams = 1;

  /// The outer loop also contains statements that cannot be vectorized
  /// (the paper's phase-1 "work A"): the compiler emits a vector body but
  /// the runtime falls back to the scalar copy.  Fixed by loop fission
  /// (the VEC1 change).
  bool fused_with_nonvectorizable = false;

  /// Indexed stores whose targets the compiler cannot prove disjoint
  /// (phase 8's global assembly).
  bool may_alias_stores = false;
};

}  // namespace vecfd::compiler
